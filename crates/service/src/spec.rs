//! [`RunSpec`]: the one request type of the run API.
//!
//! A spec names a system (resolved through [`crate::systems::by_name`])
//! and a case (resolved through `ess::cases::by_name` — hand-built library
//! or workload corpus), picks an execution backend, a novelty-scoring
//! engine, seed, replicate count, budget scale, and optional stopping
//! budgets. It subsumes the scattered
//! per-system config wiring the old entry points needed: every way of
//! running a prediction — batch, session, scheduler, serve protocol —
//! starts from one of these.

use crate::jsonio::Json;
use crate::session::{PredictionSession, Provenance};
use crate::systems;
use ess::cases::{self, BurnCase};
use ess::error::ServiceError;
use ess::fitness::{EvalBackend, SharedScenarioPool};
use ess::pipeline::{EvalStrategy, RunReport, StepDriver, StepReport};
use ess_ns::NoveltyEngine;
use firelib::Kernel;
use std::sync::Arc;
use std::time::Duration;

/// Stopping budgets enforced *between* prediction steps (a running step is
/// never interrupted, so a budget can be overshot by at most one step).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budget {
    /// Stop after this many prediction steps.
    pub max_steps: Option<usize>,
    /// Stop once this many scenario evaluations were spent.
    pub max_evaluations: Option<u64>,
    /// Stop once this much wall-clock time passed since the first
    /// `advance` call.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No budgets: run every step.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when no budget is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }
}

/// A builder-style run request: system × case × backend × seed ×
/// replicates × budgets.
///
/// ```no_run
/// use ess_service::RunSpec;
///
/// let report = RunSpec::new("ESS-NS", "meadow_small")
///     .backend("worker-pool:4".parse().unwrap())
///     .seed(7)
///     .scale(0.5)
///     .max_steps(3)
///     .run()
///     .unwrap();
/// println!("{}: mean quality {:.4}", report.case, report.mean_quality());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    system: String,
    case: String,
    backend: EvalBackend,
    novelty: NoveltyEngine,
    kernel: Kernel,
    seed: u64,
    replicates: usize,
    scale: f64,
    weight: f64,
    budget: Budget,
}

impl RunSpec {
    /// A spec for `system` on `case` with the defaults: serial backend,
    /// seed 1, one replicate, unit budget scale, no stopping budgets.
    pub fn new(system: impl Into<String>, case: impl Into<String>) -> Self {
        Self {
            system: system.into(),
            case: case.into(),
            backend: EvalBackend::Serial,
            novelty: NoveltyEngine::default(),
            kernel: Kernel::Bucket,
            seed: 1,
            replicates: 1,
            scale: 1.0,
            weight: 1.0,
            budget: Budget::unlimited(),
        }
    }

    /// Execution backend for standalone sessions (ignored when building on
    /// a shared pool — the pool already chose).
    pub fn backend(mut self, backend: EvalBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Novelty-scoring engine (kNN index strategy × master-side scoring
    /// workers), honoured by novelty-search systems and ignored by the
    /// fitness-driven baselines. Results are engine-independent
    /// (bit-identical novelty scores); only wall time changes — so unlike
    /// [`RunSpec::backend`], this knob applies on shared pools too.
    pub fn novelty(mut self, engine: NoveltyEngine) -> Self {
        self.novelty = engine;
        self
    }

    /// The configured novelty engine.
    pub fn novelty_engine(&self) -> NoveltyEngine {
        self.novelty
    }

    /// Fire-propagation kernel every simulation in the run uses (default
    /// bucket). Like [`RunSpec::novelty`] this is purely a performance
    /// knob: all kernels produce bit-identical rasters, so predictions
    /// never depend on it — and it therefore applies on shared pools too.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The configured propagation kernel.
    pub fn sim_kernel(&self) -> Kernel {
        self.kernel
    }

    /// Base RNG seed of replicate 0; replicate `r` derives its own stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of independent replicates (≥ 1).
    pub fn replicates(mut self, replicates: usize) -> Self {
        self.replicates = replicates;
        self
    }

    /// Evaluation-budget scale (the per-step search budget is roughly
    /// `scale × 400` evaluations).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Fair-share weight (> 0, default 1): under weighted-fair-share
    /// scheduling, a weight-2 session receives twice the step rate of a
    /// weight-1 peer. Other policies ignore it; results never depend on
    /// it.
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// The configured fair-share weight.
    pub fn share_weight(&self) -> f64 {
        self.weight
    }

    /// The configured execution backend (for standalone sessions).
    pub fn backend_spec(&self) -> EvalBackend {
        self.backend
    }

    /// Stop after `n` prediction steps.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.budget.max_steps = Some(n);
        self
    }

    /// Stop once `n` scenario evaluations were spent.
    pub fn max_evaluations(mut self, n: u64) -> Self {
        self.budget.max_evaluations = Some(n);
        self
    }

    /// Stop after `ms` wall-clock milliseconds of driving.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.budget.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// The requested system name.
    pub fn system_name(&self) -> &str {
        &self.system
    }

    /// The requested case name.
    pub fn case_name(&self) -> &str {
        &self.case
    }

    /// The configured budgets.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The configured replicate count.
    pub fn replicate_count(&self) -> usize {
        self.replicates
    }

    /// The most replicates one spec may request. Sessions are materialised
    /// eagerly (each owns its case and optimizer), so an unbounded count
    /// would let a single serve request allocate the server to death; runs
    /// wanting more statistical replicates than this submit more specs.
    pub const MAX_REPLICATES: usize = 1024;

    /// Validates the non-name fields.
    ///
    /// # Errors
    /// [`ServiceError::BadSpec`] on zero or more than
    /// [`RunSpec::MAX_REPLICATES`] replicates, a non-positive or
    /// non-finite scale or weight, or a zero budget (a budget of 0 can
    /// never admit a step, which is always a mistake — omit the budget
    /// instead). Every message names the offending field.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.replicates == 0 {
            return Err(ServiceError::BadSpec("replicates must be ≥ 1".into()));
        }
        if self.replicates > Self::MAX_REPLICATES {
            return Err(ServiceError::BadSpec(format!(
                "replicates must be ≤ {} (got {}); submit more specs to run additional replicates",
                Self::MAX_REPLICATES,
                self.replicates
            )));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(ServiceError::BadSpec(format!(
                "scale must be a positive, finite number (got {})",
                self.scale
            )));
        }
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(ServiceError::BadSpec(format!(
                "weight must be a positive, finite number (got {})",
                self.weight
            )));
        }
        if self.budget.max_steps == Some(0) {
            return Err(ServiceError::BadSpec("max_steps must be ≥ 1".into()));
        }
        if self.budget.max_evaluations == Some(0) {
            return Err(ServiceError::BadSpec("max_evaluations must be ≥ 1".into()));
        }
        if self.budget.deadline == Some(Duration::ZERO) {
            return Err(ServiceError::BadSpec("deadline must be positive".into()));
        }
        Ok(())
    }

    /// Resolves both names and validates the spec.
    fn resolve(&self) -> Result<(&'static systems::SystemSpec, BurnCase), ServiceError> {
        self.validate()?;
        let system = systems::resolve(&self.system)?;
        let case = cases::by_name(&self.case)
            .ok_or_else(|| ServiceError::UnknownCase(self.case.clone()))?;
        Ok((system, case))
    }

    /// Seed of replicate `r` (replicate 0 uses the spec seed unchanged, so
    /// single-replicate sessions reproduce the batch path bit for bit).
    fn replicate_seed(&self, replicate: usize) -> u64 {
        self.seed
            .wrapping_add((replicate as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Builds the replicate-0 session on its own private backend.
    pub fn session(&self) -> Result<PredictionSession, ServiceError> {
        let (system, case) = self.resolve()?;
        Ok(self.assemble(system, case, EvalStrategy::PerStep(self.backend), 0))
    }

    /// Builds one session per replicate, each on its own private backend.
    pub fn sessions(&self) -> Result<Vec<PredictionSession>, ServiceError> {
        self.sessions_with(|| EvalStrategy::PerStep(self.backend))
    }

    /// Builds one session per replicate, all multiplexing `pool` — the
    /// scheduler configuration: no new worker threads are spawned.
    pub fn sessions_on(
        &self,
        pool: &Arc<SharedScenarioPool>,
    ) -> Result<Vec<PredictionSession>, ServiceError> {
        self.sessions_with(|| EvalStrategy::Shared(Arc::clone(pool)))
    }

    fn sessions_with(
        &self,
        strategy: impl Fn() -> EvalStrategy,
    ) -> Result<Vec<PredictionSession>, ServiceError> {
        let (system, case) = self.resolve()?;
        Ok((0..self.replicates)
            .map(|r| self.assemble(system, case.clone(), strategy(), r))
            .collect())
    }

    fn assemble(
        &self,
        system: &systems::SystemSpec,
        case: BurnCase,
        strategy: EvalStrategy,
        replicate: usize,
    ) -> PredictionSession {
        let mut session = PredictionSession::new(
            case,
            system.make_tuned(self.scale, self.novelty),
            strategy,
            self.replicate_seed(replicate),
            self.budget,
        );
        session.set_provenance(self.clone(), replicate);
        session
    }

    /// Rebuilds the session a snapshot describes: a driver positioned
    /// after `steps.len()` completed steps (carrying the last step's
    /// `Kign`), a fresh optimizer, and the accumulated reports — the
    /// checkpoint/resume engine behind
    /// [`crate::SessionSnapshot::restore_with`].
    ///
    /// # Errors
    /// Name/spec errors from resolution, plus [`ServiceError::BadSpec`]
    /// when the checkpoint does not fit the case (more completed steps
    /// than the case has, non-sequential step indices) or `replicate`
    /// exceeds the spec's replicate count.
    pub(crate) fn restore_session(
        &self,
        replicate: usize,
        steps: Vec<StepReport>,
        driven_ms: f64,
        strategy: EvalStrategy,
    ) -> Result<PredictionSession, ServiceError> {
        let (system, case) = self.resolve()?;
        if replicate >= self.replicates {
            return Err(ServiceError::BadSpec(format!(
                "snapshot replicate {} out of range for a {}-replicate spec",
                replicate, self.replicates
            )));
        }
        let total = case.intervals().saturating_sub(1);
        if steps.len() > total {
            return Err(ServiceError::BadSpec(format!(
                "snapshot has {} completed steps but case '{}' runs only {}",
                steps.len(),
                self.case,
                total
            )));
        }
        if let Some((i, s)) = steps.iter().enumerate().find(|(i, s)| s.step != i + 1) {
            return Err(ServiceError::BadSpec(format!(
                "snapshot steps must be sequential from 1 (entry {} reports step {})",
                i, s.step
            )));
        }
        let carried_kign = steps.last().map(|s| s.kign);
        let driver = StepDriver::restore(
            case,
            strategy,
            self.replicate_seed(replicate),
            steps.len(),
            carried_kign,
        )
        .with_kernel(self.kernel);
        Ok(PredictionSession::restored(
            driver,
            system.make_tuned(self.scale, self.novelty),
            self.budget,
            self.weight,
            steps,
            driven_ms,
            Provenance {
                spec: self.clone(),
                replicate,
            },
        ))
    }

    /// Serializes the spec as the protocol-v2 / snapshot JSON object. The
    /// `Display` names of the backend and novelty engine round-trip
    /// through their `FromStr` impls, and unset budgets serialize as
    /// `null`, so `RunSpec::from_json(spec.to_json())` reproduces the spec
    /// exactly.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("system", self.system.as_str())
            .field("case", self.case.as_str())
            .field("backend", self.backend.name())
            .field("novelty", self.novelty.name())
            .field("kernel", self.kernel.to_string().as_str())
            .field("seed", self.seed)
            .field("replicates", self.replicates)
            .field("scale", self.scale)
            .field("weight", self.weight)
            .field("max_steps", self.budget.max_steps)
            .field("max_evaluations", self.budget.max_evaluations)
            .field(
                "deadline_ms",
                self.budget.deadline.map(|d| d.as_millis() as u64),
            )
    }

    /// Parses a spec object (a v1 `run` request body, a v2 `spec` payload,
    /// or a snapshot's embedded spec — unknown members and `null` budgets
    /// are ignored) and validates it.
    ///
    /// # Errors
    /// A one-line description naming the offending field.
    pub fn from_json(v: &Json) -> Result<RunSpec, String> {
        let present = |key: &str| v.get(key).filter(|j| !matches!(j, Json::Null));
        let system = present("system")
            .and_then(Json::as_str)
            .ok_or("spec needs a 'system' string")?;
        let case = present("case")
            .and_then(Json::as_str)
            .ok_or("spec needs a 'case' string")?;
        let mut spec = RunSpec::new(system, case);
        if let Some(b) = present("backend") {
            let name = b
                .as_str()
                .ok_or("'backend' must be a string like \"serial\" or \"worker-pool:4\"")?;
            spec = spec.backend(
                name.parse()
                    .map_err(|e: parworker::ParseBackendError| e.to_string())?,
            );
        }
        if let Some(n) = present("novelty") {
            let name = n
                .as_str()
                .ok_or("'novelty' must be a string like \"sorted\", \"brute\" or \"sorted:4\"")?;
            spec = spec.novelty(
                name.parse()
                    .map_err(|e: ess_ns::ParseNoveltyEngineError| e.to_string())?,
            );
        }
        if let Some(k) = present("kernel") {
            let name = k
                .as_str()
                .ok_or("'kernel' must be a string like \"bucket\", \"heap\" or \"tiled:128x4\"")?;
            spec = spec.kernel(
                name.parse()
                    .map_err(|e: firelib::ParseKernelError| e.to_string())?,
            );
        }
        if let Some(x) = present("seed") {
            spec = spec.seed(x.as_u64().ok_or("'seed' must be a non-negative integer")?);
        }
        if let Some(x) = present("replicates") {
            spec = spec.replicates(
                x.as_u64()
                    .ok_or("'replicates' must be a positive integer")? as usize,
            );
        }
        if let Some(x) = present("scale") {
            spec = spec.scale(x.as_f64().ok_or("'scale' must be a number")?);
        }
        if let Some(x) = present("weight") {
            spec = spec.weight(x.as_f64().ok_or("'weight' must be a number")?);
        }
        if let Some(x) = present("max_steps") {
            spec = spec
                .max_steps(x.as_u64().ok_or("'max_steps' must be a positive integer")? as usize);
        }
        if let Some(x) = present("max_evaluations") {
            spec = spec.max_evaluations(
                x.as_u64()
                    .ok_or("'max_evaluations' must be a positive integer")?,
            );
        }
        if let Some(x) = present("deadline_ms") {
            spec = spec.deadline_ms(
                x.as_u64()
                    .ok_or("'deadline_ms' must be a positive integer")?,
            );
        }
        spec.validate().map_err(|e| e.to_string())?;
        Ok(spec)
    }

    /// The batch entry point: builds the replicate-0 session and drains
    /// it. This is the old `run()`-to-completion API, now a thin wrapper
    /// over a drained session.
    ///
    /// # Errors
    /// Name/spec errors from building, or
    /// [`ServiceError::BudgetExhausted`] when a budget stopped the run
    /// early (the partial report rides in the error).
    pub fn run(&self) -> Result<RunReport, ServiceError> {
        self.session()?.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builder_chain() {
        let spec = RunSpec::new("ESS-NS", "meadow_small")
            .seed(9)
            .replicates(3)
            .scale(0.5)
            .max_steps(2)
            .max_evaluations(1000)
            .deadline_ms(5000)
            .backend(EvalBackend::WorkerPool(2))
            .novelty(NoveltyEngine::brute_force().with_workers(2))
            .kernel(Kernel::Tiled {
                tile: 64,
                workers: 4,
            });
        assert_eq!(spec.system_name(), "ESS-NS");
        assert_eq!(
            spec.sim_kernel(),
            Kernel::Tiled {
                tile: 64,
                workers: 4
            }
        );
        assert_eq!(
            RunSpec::new("ESS", "meadow_small").sim_kernel(),
            Kernel::Bucket
        );
        assert_eq!(
            spec.novelty_engine(),
            NoveltyEngine::brute_force().with_workers(2)
        );
        assert_eq!(
            RunSpec::new("ESS", "meadow_small").novelty_engine(),
            NoveltyEngine::default()
        );
        assert_eq!(spec.case_name(), "meadow_small");
        assert_eq!(spec.replicate_count(), 3);
        assert_eq!(spec.budget().max_steps, Some(2));
        assert!(spec.validate().is_ok());
        assert_eq!(spec.replicate_seed(0), 9);
        assert_ne!(spec.replicate_seed(1), 9);
    }

    #[test]
    fn bad_specs_are_rejected_with_bad_spec() {
        let base = RunSpec::new("ESS", "grass_uniform");
        for bad in [
            base.clone().replicates(0),
            base.clone().replicates(RunSpec::MAX_REPLICATES + 1),
            base.clone().scale(0.0),
            base.clone().scale(-1.0),
            base.clone().scale(f64::NAN),
            base.clone().scale(f64::INFINITY),
            base.clone().weight(0.0),
            base.clone().weight(-2.0),
            base.clone().weight(f64::NAN),
            base.clone().weight(f64::INFINITY),
            base.clone().max_steps(0),
            base.clone().max_evaluations(0),
        ] {
            assert!(matches!(bad.validate(), Err(ServiceError::BadSpec(_))));
            assert!(matches!(bad.run(), Err(ServiceError::BadSpec(_))));
        }
    }

    #[test]
    fn validation_errors_are_one_line_and_name_the_field() {
        let base = RunSpec::new("ESS", "grass_uniform");
        for (bad, field) in [
            (base.clone().scale(0.0), "scale"),
            (base.clone().scale(f64::NEG_INFINITY), "scale"),
            (base.clone().weight(f64::NAN), "weight"),
            (base.clone().replicates(0), "replicates"),
            (base.clone().max_steps(0), "max_steps"),
            (base.clone().max_evaluations(0), "max_evaluations"),
            (base.clone().deadline_ms(0), "deadline"),
        ] {
            let message = bad.validate().expect_err("must reject").to_string();
            assert!(
                message.contains(field),
                "message must name '{field}': {message}"
            );
            assert!(!message.contains('\n'), "must be one line: {message}");
        }
    }

    #[test]
    fn replicate_cap_message_states_cap_and_workaround() {
        let err = RunSpec::new("ESS", "grass_uniform")
            .replicates(RunSpec::MAX_REPLICATES + 1)
            .validate()
            .expect_err("over the cap");
        assert_eq!(
            err.to_string(),
            "bad run spec: replicates must be ≤ 1024 (got 1025); \
             submit more specs to run additional replicates"
        );
    }

    #[test]
    fn spec_json_round_trips_exactly() {
        let full = RunSpec::new("ESS-NS", "meadow_small")
            .backend(EvalBackend::WorkerPool(4))
            .novelty(NoveltyEngine::brute_force().with_workers(2))
            .kernel(Kernel::Tiled {
                tile: 128,
                workers: 0,
            })
            .seed(99)
            .replicates(3)
            .scale(0.375)
            .weight(2.5)
            .max_steps(4)
            .max_evaluations(10_000)
            .deadline_ms(30_000);
        let minimal = RunSpec::new("ESS", "grass_uniform");
        for spec in [full, minimal] {
            let round = RunSpec::from_json(&spec.to_json()).expect("own json parses");
            assert_eq!(round, spec);
            // And through the actual wire text, not just the value tree.
            let text = spec.to_json().to_string();
            let reparsed =
                RunSpec::from_json(&Json::parse(&text).expect("valid text")).expect("parses");
            assert_eq!(reparsed, spec);
        }
    }

    #[test]
    fn from_json_names_the_offending_field() {
        for (line, needle) in [
            (r#"{"case":"meadow_small"}"#, "'system'"),
            (r#"{"system":"ESS"}"#, "'case'"),
            (
                r#"{"system":"ESS","case":"meadow_small","seed":-4}"#,
                "'seed'",
            ),
            (
                r#"{"system":"ESS","case":"meadow_small","scale":"big"}"#,
                "'scale'",
            ),
            (
                r#"{"system":"ESS","case":"meadow_small","weight":0}"#,
                "weight",
            ),
            (
                r#"{"system":"ESS","case":"meadow_small","backend":"gpu:9"}"#,
                "backend",
            ),
            (
                r#"{"system":"ESS","case":"meadow_small","kernel":"quantum"}"#,
                "kernel",
            ),
        ] {
            let err = RunSpec::from_json(&Json::parse(line).expect("valid json"))
                .expect_err("must reject");
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn unknown_names_resolve_to_typed_errors() {
        assert!(matches!(
            RunSpec::new("ESS-XL", "meadow_small").session(),
            Err(ServiceError::UnknownSystem(ref n)) if n == "ESS-XL"
        ));
        assert!(matches!(
            RunSpec::new("ESS", "atlantis_burn").session(),
            Err(ServiceError::UnknownCase(ref n)) if n == "atlantis_burn"
        ));
    }
}
