//! [`RunSpec`]: the one request type of the run API.
//!
//! A spec names a system (resolved through [`crate::systems::by_name`])
//! and a case (resolved through `ess::cases::by_name` — hand-built library
//! or workload corpus), picks an execution backend, a novelty-scoring
//! engine, seed, replicate count, budget scale, and optional stopping
//! budgets. It subsumes the scattered
//! per-system config wiring the old entry points needed: every way of
//! running a prediction — batch, session, scheduler, serve protocol —
//! starts from one of these.

use crate::session::PredictionSession;
use crate::systems;
use ess::cases::{self, BurnCase};
use ess::error::ServiceError;
use ess::fitness::{EvalBackend, SharedScenarioPool};
use ess::pipeline::{EvalStrategy, RunReport};
use ess_ns::NoveltyEngine;
use std::sync::Arc;
use std::time::Duration;

/// Stopping budgets enforced *between* prediction steps (a running step is
/// never interrupted, so a budget can be overshot by at most one step).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budget {
    /// Stop after this many prediction steps.
    pub max_steps: Option<usize>,
    /// Stop once this many scenario evaluations were spent.
    pub max_evaluations: Option<u64>,
    /// Stop once this much wall-clock time passed since the first
    /// `advance` call.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No budgets: run every step.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when no budget is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }
}

/// A builder-style run request: system × case × backend × seed ×
/// replicates × budgets.
///
/// ```no_run
/// use ess_service::RunSpec;
///
/// let report = RunSpec::new("ESS-NS", "meadow_small")
///     .backend("worker-pool:4".parse().unwrap())
///     .seed(7)
///     .scale(0.5)
///     .max_steps(3)
///     .run()
///     .unwrap();
/// println!("{}: mean quality {:.4}", report.case, report.mean_quality());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    system: String,
    case: String,
    backend: EvalBackend,
    novelty: NoveltyEngine,
    seed: u64,
    replicates: usize,
    scale: f64,
    budget: Budget,
}

impl RunSpec {
    /// A spec for `system` on `case` with the defaults: serial backend,
    /// seed 1, one replicate, unit budget scale, no stopping budgets.
    pub fn new(system: impl Into<String>, case: impl Into<String>) -> Self {
        Self {
            system: system.into(),
            case: case.into(),
            backend: EvalBackend::Serial,
            novelty: NoveltyEngine::default(),
            seed: 1,
            replicates: 1,
            scale: 1.0,
            budget: Budget::unlimited(),
        }
    }

    /// Execution backend for standalone sessions (ignored when building on
    /// a shared pool — the pool already chose).
    pub fn backend(mut self, backend: EvalBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Novelty-scoring engine (kNN index strategy × master-side scoring
    /// workers), honoured by novelty-search systems and ignored by the
    /// fitness-driven baselines. Results are engine-independent
    /// (bit-identical novelty scores); only wall time changes — so unlike
    /// [`RunSpec::backend`], this knob applies on shared pools too.
    pub fn novelty(mut self, engine: NoveltyEngine) -> Self {
        self.novelty = engine;
        self
    }

    /// The configured novelty engine.
    pub fn novelty_engine(&self) -> NoveltyEngine {
        self.novelty
    }

    /// Base RNG seed of replicate 0; replicate `r` derives its own stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of independent replicates (≥ 1).
    pub fn replicates(mut self, replicates: usize) -> Self {
        self.replicates = replicates;
        self
    }

    /// Evaluation-budget scale (the per-step search budget is roughly
    /// `scale × 400` evaluations).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Stop after `n` prediction steps.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.budget.max_steps = Some(n);
        self
    }

    /// Stop once `n` scenario evaluations were spent.
    pub fn max_evaluations(mut self, n: u64) -> Self {
        self.budget.max_evaluations = Some(n);
        self
    }

    /// Stop after `ms` wall-clock milliseconds of driving.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.budget.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// The requested system name.
    pub fn system_name(&self) -> &str {
        &self.system
    }

    /// The requested case name.
    pub fn case_name(&self) -> &str {
        &self.case
    }

    /// The configured budgets.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The configured replicate count.
    pub fn replicate_count(&self) -> usize {
        self.replicates
    }

    /// The most replicates one spec may request. Sessions are materialised
    /// eagerly (each owns its case and optimizer), so an unbounded count
    /// would let a single serve request allocate the server to death; runs
    /// wanting more statistical replicates than this submit more specs.
    pub const MAX_REPLICATES: usize = 1024;

    /// Validates the non-name fields.
    ///
    /// # Errors
    /// [`ServiceError::BadSpec`] on zero or more than
    /// [`RunSpec::MAX_REPLICATES`] replicates, a non-positive or
    /// non-finite scale, or a zero budget (a budget of 0 can never admit a
    /// step, which is always a mistake — omit the budget instead).
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.replicates == 0 {
            return Err(ServiceError::BadSpec("replicates must be ≥ 1".into()));
        }
        if self.replicates > Self::MAX_REPLICATES {
            return Err(ServiceError::BadSpec(format!(
                "replicates must be ≤ {} (got {})",
                Self::MAX_REPLICATES,
                self.replicates
            )));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(ServiceError::BadSpec(format!(
                "scale must be a positive number, got {}",
                self.scale
            )));
        }
        if self.budget.max_steps == Some(0) {
            return Err(ServiceError::BadSpec("max_steps must be ≥ 1".into()));
        }
        if self.budget.max_evaluations == Some(0) {
            return Err(ServiceError::BadSpec("max_evaluations must be ≥ 1".into()));
        }
        if self.budget.deadline == Some(Duration::ZERO) {
            return Err(ServiceError::BadSpec("deadline must be positive".into()));
        }
        Ok(())
    }

    /// Resolves both names and validates the spec.
    fn resolve(&self) -> Result<(&'static systems::SystemSpec, BurnCase), ServiceError> {
        self.validate()?;
        let system = systems::resolve(&self.system)?;
        let case = cases::by_name(&self.case)
            .ok_or_else(|| ServiceError::UnknownCase(self.case.clone()))?;
        Ok((system, case))
    }

    /// Seed of replicate `r` (replicate 0 uses the spec seed unchanged, so
    /// single-replicate sessions reproduce the batch path bit for bit).
    fn replicate_seed(&self, replicate: usize) -> u64 {
        self.seed
            .wrapping_add((replicate as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Builds the replicate-0 session on its own private backend.
    pub fn session(&self) -> Result<PredictionSession, ServiceError> {
        let (system, case) = self.resolve()?;
        Ok(self.assemble(system, case, EvalStrategy::PerStep(self.backend), 0))
    }

    /// Builds one session per replicate, each on its own private backend.
    pub fn sessions(&self) -> Result<Vec<PredictionSession>, ServiceError> {
        self.sessions_with(|| EvalStrategy::PerStep(self.backend))
    }

    /// Builds one session per replicate, all multiplexing `pool` — the
    /// scheduler configuration: no new worker threads are spawned.
    pub fn sessions_on(
        &self,
        pool: &Arc<SharedScenarioPool>,
    ) -> Result<Vec<PredictionSession>, ServiceError> {
        self.sessions_with(|| EvalStrategy::Shared(Arc::clone(pool)))
    }

    fn sessions_with(
        &self,
        strategy: impl Fn() -> EvalStrategy,
    ) -> Result<Vec<PredictionSession>, ServiceError> {
        let (system, case) = self.resolve()?;
        Ok((0..self.replicates)
            .map(|r| self.assemble(system, case.clone(), strategy(), r))
            .collect())
    }

    fn assemble(
        &self,
        system: &systems::SystemSpec,
        case: BurnCase,
        strategy: EvalStrategy,
        replicate: usize,
    ) -> PredictionSession {
        PredictionSession::new(
            case,
            system.make_tuned(self.scale, self.novelty),
            strategy,
            self.replicate_seed(replicate),
            self.budget,
        )
    }

    /// The batch entry point: builds the replicate-0 session and drains
    /// it. This is the old `run()`-to-completion API, now a thin wrapper
    /// over a drained session.
    ///
    /// # Errors
    /// Name/spec errors from building, or
    /// [`ServiceError::BudgetExhausted`] when a budget stopped the run
    /// early (the partial report rides in the error).
    pub fn run(&self) -> Result<RunReport, ServiceError> {
        self.session()?.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builder_chain() {
        let spec = RunSpec::new("ESS-NS", "meadow_small")
            .seed(9)
            .replicates(3)
            .scale(0.5)
            .max_steps(2)
            .max_evaluations(1000)
            .deadline_ms(5000)
            .backend(EvalBackend::WorkerPool(2))
            .novelty(NoveltyEngine::brute_force().with_workers(2));
        assert_eq!(spec.system_name(), "ESS-NS");
        assert_eq!(
            spec.novelty_engine(),
            NoveltyEngine::brute_force().with_workers(2)
        );
        assert_eq!(
            RunSpec::new("ESS", "meadow_small").novelty_engine(),
            NoveltyEngine::default()
        );
        assert_eq!(spec.case_name(), "meadow_small");
        assert_eq!(spec.replicate_count(), 3);
        assert_eq!(spec.budget().max_steps, Some(2));
        assert!(spec.validate().is_ok());
        assert_eq!(spec.replicate_seed(0), 9);
        assert_ne!(spec.replicate_seed(1), 9);
    }

    #[test]
    fn bad_specs_are_rejected_with_bad_spec() {
        let base = RunSpec::new("ESS", "grass_uniform");
        for bad in [
            base.clone().replicates(0),
            base.clone().replicates(RunSpec::MAX_REPLICATES + 1),
            base.clone().scale(0.0),
            base.clone().scale(f64::NAN),
            base.clone().max_steps(0),
            base.clone().max_evaluations(0),
        ] {
            assert!(matches!(bad.validate(), Err(ServiceError::BadSpec(_))));
            assert!(matches!(bad.run(), Err(ServiceError::BadSpec(_))));
        }
    }

    #[test]
    fn unknown_names_resolve_to_typed_errors() {
        assert!(matches!(
            RunSpec::new("ESS-XL", "meadow_small").session(),
            Err(ServiceError::UnknownSystem(ref n)) if n == "ESS-XL"
        ));
        assert!(matches!(
            RunSpec::new("ESS", "atlantis_burn").session(),
            Err(ServiceError::UnknownCase(ref n)) if n == "atlantis_burn"
        ));
    }
}
