//! Checkpoint/resume: the serializable [`SessionSnapshot`].
//!
//! A snapshot is the *deterministic* coordinates of a live run: the
//! originating [`RunSpec`], the replicate index, and every completed
//! [`StepReport`]. That is sufficient because the step engine has no other
//! cross-step state — per-step RNG seeds are a pure function of the
//! replicate seed and the step index, every optimizer builds a fresh
//! engine per step, and the only carried value (`Kign`) is recorded in the
//! last step report. Restoring therefore replays the exact seed stream the
//! uninterrupted run would have used: the remaining steps, and the final
//! `RunReport`'s deterministic fields, are **bit-identical** to never
//! having stopped (`crates/service/tests/snapshot_resume.rs` pins this for
//! all four paper systems).
//!
//! Snapshots round-trip through [`crate::jsonio`]
//! ([`SessionSnapshot::to_json`] / [`SessionSnapshot::from_json`]), so the
//! v2 serve protocol can hand them to clients and accept them back —
//! sessions survive server restarts and can migrate between processes.

use crate::jsonio::Json;
use crate::session::PredictionSession;
use crate::spec::RunSpec;
use ess::error::ServiceError;
use ess::fitness::SharedScenarioPool;
use ess::pipeline::{EvalStrategy, StepReport};
use evoalg::diversity::DiversityReport;
use std::sync::Arc;

/// A serializable checkpoint of one prediction session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    spec: RunSpec,
    replicate: usize,
    steps: Vec<StepReport>,
    driven_ms: f64,
}

impl SessionSnapshot {
    /// Format tag embedded in the JSON form (`"format"` member), bumped on
    /// incompatible layout changes.
    pub const FORMAT: &'static str = "ess-session-snapshot/1";

    pub(crate) fn new(
        spec: RunSpec,
        replicate: usize,
        steps: Vec<StepReport>,
        driven_ms: f64,
    ) -> Self {
        Self {
            spec,
            replicate,
            steps,
            driven_ms,
        }
    }

    /// The spec that built the session.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// Which replicate of the spec this session is.
    pub fn replicate(&self) -> usize {
        self.replicate
    }

    /// Steps completed at checkpoint time.
    pub fn completed(&self) -> usize {
        self.steps.len()
    }

    /// The accumulated step reports.
    pub fn steps(&self) -> &[StepReport] {
        &self.steps
    }

    /// Wall-clock milliseconds billed before the checkpoint.
    pub fn driven_ms(&self) -> f64 {
        self.driven_ms
    }

    /// Rebuilds the session on `strategy`, positioned exactly where the
    /// snapshot was taken. The deadline clock (if the spec set one)
    /// restarts at the first post-restore `advance`.
    ///
    /// # Errors
    /// Name/spec resolution errors, and [`ServiceError::BadSpec`] when the
    /// checkpoint is inconsistent with the case (too many steps,
    /// non-sequential step indices, replicate out of range).
    pub fn restore_with(&self, strategy: EvalStrategy) -> Result<PredictionSession, ServiceError> {
        self.spec
            .restore_session(self.replicate, self.steps.clone(), self.driven_ms, strategy)
    }

    /// [`SessionSnapshot::restore_with`] multiplexing an existing shared
    /// pool — the serve-loop configuration.
    ///
    /// # Errors
    /// See [`SessionSnapshot::restore_with`].
    pub fn restore_on(
        &self,
        pool: &Arc<SharedScenarioPool>,
    ) -> Result<PredictionSession, ServiceError> {
        self.restore_with(EvalStrategy::Shared(Arc::clone(pool)))
    }

    /// [`SessionSnapshot::restore_with`] on the spec's own private
    /// backend — the standalone configuration.
    ///
    /// # Errors
    /// See [`SessionSnapshot::restore_with`].
    pub fn restore(&self) -> Result<PredictionSession, ServiceError> {
        self.restore_with(EvalStrategy::PerStep(self.spec.backend_spec()))
    }

    /// Serializes the snapshot (spec, replicate, step reports, billed
    /// time) for the v2 protocol. `from_json(to_json())` reproduces the
    /// snapshot exactly: floats print in shortest-round-trip form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("format", Self::FORMAT)
            .field("spec", self.spec.to_json())
            .field("replicate", self.replicate)
            .field("driven_ms", self.driven_ms)
            .field(
                "steps",
                Json::Arr(self.steps.iter().map(step_to_json).collect()),
            )
    }

    /// Parses a snapshot object (and validates the embedded spec).
    ///
    /// # Errors
    /// A one-line description naming the offending member.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match v.get("format").and_then(Json::as_str) {
            Some(Self::FORMAT) => {}
            Some(other) => {
                return Err(format!(
                    "unsupported snapshot format '{other}' (this build reads '{}')",
                    Self::FORMAT
                ))
            }
            None => return Err("snapshot needs a 'format' string".into()),
        }
        let spec = RunSpec::from_json(v.get("spec").ok_or("snapshot needs a 'spec' object")?)?;
        let replicate =
            v.get("replicate")
                .and_then(Json::as_u64)
                .ok_or("snapshot needs a non-negative 'replicate' integer")? as usize;
        let driven_ms = v
            .get("driven_ms")
            .and_then(Json::as_f64)
            .ok_or("snapshot needs a numeric 'driven_ms'")?;
        let steps = v
            .get("steps")
            .and_then(Json::as_arr)
            .ok_or("snapshot needs a 'steps' array")?
            .iter()
            .map(step_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            spec,
            replicate,
            steps,
            driven_ms,
        })
    }
}

/// Serializes one [`StepReport`] (every field, diversity nested).
pub(crate) fn step_to_json(s: &StepReport) -> Json {
    Json::obj()
        .field("step", s.step)
        .field("quality", s.quality)
        .field("kign", s.kign)
        .field("calibration_fitness", s.calibration_fitness)
        .field("os_best_fitness", s.os_best_fitness)
        .field(
            "diversity",
            Json::obj()
                .field("mean_pairwise", s.diversity.mean_pairwise)
                .field("mean_gene_std", s.diversity.mean_gene_std)
                .field("distinct", s.diversity.distinct)
                .field("size", s.diversity.size),
        )
        .field("evaluations", s.evaluations)
        .field("generations", s.generations)
        .field("wall_ms", s.wall_ms)
}

/// Parses one [`StepReport`].
pub(crate) fn step_from_json(v: &Json) -> Result<StepReport, String> {
    let num = |key: &str| {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("step report needs a numeric '{key}'"))
    };
    let quality = match v.get("quality") {
        None | Some(Json::Null) => None,
        Some(q) => Some(q.as_f64().ok_or("'quality' must be a number or null")?),
    };
    let diversity = v
        .get("diversity")
        .ok_or("step report needs a 'diversity' object")?;
    let dnum = |key: &str| {
        diversity
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("diversity needs a numeric '{key}'"))
    };
    Ok(StepReport {
        step: v
            .get("step")
            .and_then(Json::as_u64)
            .ok_or("step report needs a non-negative 'step' integer")? as usize,
        quality,
        kign: num("kign")?,
        calibration_fitness: num("calibration_fitness")?,
        os_best_fitness: num("os_best_fitness")?,
        diversity: DiversityReport {
            mean_pairwise: dnum("mean_pairwise")?,
            mean_gene_std: dnum("mean_gene_std")?,
            distinct: diversity
                .get("distinct")
                .and_then(Json::as_u64)
                .ok_or("diversity needs a non-negative 'distinct' integer")?
                as usize,
            size: diversity
                .get("size")
                .and_then(Json::as_u64)
                .ok_or("diversity needs a non-negative 'size' integer")? as usize,
        },
        evaluations: v
            .get("evaluations")
            .and_then(Json::as_u64)
            .ok_or("step report needs a non-negative 'evaluations' integer")?,
        generations: v
            .get("generations")
            .and_then(Json::as_u64)
            .ok_or("step report needs a non-negative 'generations' integer")?
            as u32,
        wall_ms: num("wall_ms")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trips_exactly() {
        let spec = RunSpec::new("ESS-NS", "meadow_small")
            .seed(7)
            .replicates(2)
            .scale(0.25)
            .weight(2.0)
            .max_steps(3);
        let mut session = spec.sessions().expect("sessions build").remove(1);
        while !session.is_done() {
            session.advance();
        }
        let snapshot = session.snapshot().expect("spec-built session snapshots");
        assert_eq!(snapshot.replicate(), 1);
        assert_eq!(snapshot.completed(), 3);

        let json = snapshot.to_json();
        let compact = json.to_string();
        let reparsed = SessionSnapshot::from_json(&Json::parse(&compact).expect("parses"))
            .expect("well-formed snapshot");
        assert_eq!(reparsed, snapshot, "compact round trip");
        let pretty = json.to_pretty();
        let reparsed = SessionSnapshot::from_json(&Json::parse(&pretty).expect("pretty parses"))
            .expect("well-formed snapshot");
        assert_eq!(reparsed, snapshot, "pretty round trip");
    }

    #[test]
    fn malformed_snapshots_name_the_offending_member() {
        let good = RunSpec::new("ESS", "meadow_small")
            .max_steps(1)
            .session()
            .expect("session")
            .snapshot()
            .expect("snapshot")
            .to_json();
        for (mutate, needle) in [
            (r#"{"format":"bogus/9"}"#, "unsupported snapshot format"),
            (r#"{}"#, "'format'"),
        ] {
            let err =
                SessionSnapshot::from_json(&Json::parse(mutate).unwrap()).expect_err("must reject");
            assert!(err.contains(needle), "{err}");
        }
        // A hand-corrupted steps array is rejected, not trusted.
        let mut broken = good.clone();
        if let Json::Obj(pairs) = &mut broken {
            for (k, v) in pairs.iter_mut() {
                if k == "steps" {
                    *v = Json::Arr(vec![Json::obj().field("step", 1u64)]);
                }
            }
        }
        assert!(SessionSnapshot::from_json(&broken).is_err());
    }

    #[test]
    fn restore_rejects_checkpoints_that_do_not_fit_the_case() {
        let spec = RunSpec::new("ESS", "meadow_small").max_steps(2).scale(0.15);
        let mut session = spec.session().expect("session");
        while !session.is_done() {
            session.advance();
        }
        let snapshot = session.snapshot().expect("snapshot");

        // Steps renumbered out of sequence → BadSpec, not a panic.
        let mut bad = snapshot.clone();
        bad.steps[0].step = 5;
        assert!(matches!(
            bad.restore(),
            Err(ServiceError::BadSpec(ref m)) if m.contains("sequential")
        ));

        // Replicate index beyond the spec's count → BadSpec.
        let mut bad = snapshot.clone();
        bad.replicate = 7;
        assert!(matches!(
            bad.restore(),
            Err(ServiceError::BadSpec(ref m)) if m.contains("replicate")
        ));
    }

    #[test]
    fn hand_built_sessions_cannot_snapshot() {
        use ess::cases;
        use ess::fitness::EvalBackend;
        let case = cases::by_name("meadow_small").expect("case");
        let optimizer = crate::systems::by_name("ESS").expect("system").make(0.2);
        let session = PredictionSession::new(
            case,
            optimizer,
            EvalStrategy::PerStep(EvalBackend::Serial),
            1,
            crate::spec::Budget::unlimited(),
        );
        assert!(matches!(
            session.snapshot(),
            Err(ServiceError::BadSpec(ref m)) if m.contains("provenance")
        ));
    }
}
