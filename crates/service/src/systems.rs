//! The unified system registry: every paper system as a named
//! [`StepOptimizer`] factory.
//!
//! Mirrors `ess::cases::by_name` (the case registry): a [`RunSpec`] names a
//! system with a string, [`by_name`] resolves it, and the returned
//! [`SystemSpec`] builds the optimizer at any evaluation-budget scale. The
//! configurations are the budget-matched comparison set the experiment
//! harness has always used (roughly `scale × 400` scenario evaluations per
//! prediction step, matched within ~10 % across systems so quality
//! comparisons stay fair) — moved here so the service, the harness and the
//! examples all construct systems through one door.
//!
//! [`RunSpec`]: crate::RunSpec

use ess::ess_classic::{EssClassic, EssConfig};
use ess::essim_de::{EssimDe, EssimDeConfig, TuningConfig};
use ess::essim_ea::{EssimEa, EssimEaConfig};
use ess::pipeline::StepOptimizer;
use ess::ServiceError;
use ess_ns::{EssNs, EssNsConfig, InclusionPolicy, NoveltyEngine, NoveltyGaConfig};

/// A registered prediction system: canonical name, one-line description,
/// and the optimizer factory.
#[derive(Clone, Copy)]
pub struct SystemSpec {
    /// Canonical report key (`"ESS-NS"`, …).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    make: fn(f64, NoveltyEngine) -> Box<dyn StepOptimizer>,
}

impl SystemSpec {
    /// Builds the optimizer with a per-step budget of roughly
    /// `scale × 400` scenario evaluations, on the default novelty engine.
    pub fn make(&self, scale: f64) -> Box<dyn StepOptimizer> {
        self.make_tuned(scale, NoveltyEngine::default())
    }

    /// [`SystemSpec::make`] with an explicit novelty-scoring engine — the
    /// knob [`crate::RunSpec::novelty`] routes here. Novelty scores are
    /// engine-independent (bit-identical), so the baselines that do no
    /// novelty bookkeeping simply ignore it; for ESS-NS it selects the
    /// kNN index and the master-side scoring worker count.
    pub fn make_tuned(&self, scale: f64, novelty: NoveltyEngine) -> Box<dyn StepOptimizer> {
        (self.make)(scale, novelty)
    }
}

impl std::fmt::Debug for SystemSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSpec")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Budget scaling shared by every factory: floors at 4 so tiny scales stay
/// runnable.
fn scaled(v: usize, scale: f64) -> usize {
    ((v as f64) * scale).round().max(4.0) as usize
}

fn make_ess(scale: f64, _novelty: NoveltyEngine) -> Box<dyn StepOptimizer> {
    Box::new(EssClassic::new(EssConfig {
        population_size: scaled(32, scale),
        offspring: scaled(32, scale),
        mutation_rate: 0.1,
        crossover_rate: 0.9,
        max_generations: 12,
        fitness_threshold: 0.95,
    }))
}

fn make_essim_ea(scale: f64, _novelty: NoveltyEngine) -> Box<dyn StepOptimizer> {
    let island = scaled(12, scale);
    Box::new(EssimEa::new(EssimEaConfig {
        islands: 3,
        island_population: island,
        offspring: island,
        mutation_rate: 0.1,
        crossover_rate: 0.9,
        migration_interval: 3,
        migrants: 2.min(island - 1),
        max_generations: 11,
        fitness_threshold: 0.95,
    }))
}

fn make_essim_de(scale: f64, _novelty: NoveltyEngine) -> Box<dyn StepOptimizer> {
    let island = scaled(12, scale);
    Box::new(EssimDe::new(EssimDeConfig {
        islands: 3,
        island_population: island,
        differential_weight: 0.8,
        crossover_rate: 0.9,
        migration_interval: 3,
        migrants: 2.min(island - 1),
        max_generations: 11,
        fitness_threshold: 0.95,
        elite_fraction: 0.5,
        result_set_size: scaled(24, scale),
        tuning: TuningConfig::enabled(),
    }))
}

fn make_ess_ns(scale: f64, novelty: NoveltyEngine) -> Box<dyn StepOptimizer> {
    Box::new(EssNs::new(EssNsConfig {
        algorithm: NoveltyGaConfig {
            population_size: scaled(32, scale),
            offspring: scaled(32, scale),
            max_generations: 12,
            fitness_threshold: 0.95,
            novelty_neighbours: 5,
            archive_capacity: 2 * scaled(32, scale),
            best_set_capacity: scaled(24, scale),
            novelty,
            ..NoveltyGaConfig::default()
        },
        inclusion: InclusionPolicy::BestOnly,
        ..EssNsConfig::default()
    }))
}

/// The registry table, baseline order.
const REGISTRY: &[SystemSpec] = &[
    SystemSpec {
        name: "ESS",
        description: "fitness GA, result set = final population (Fig. 1)",
        make: make_ess,
    },
    SystemSpec {
        name: "ESSIM-EA",
        description: "island-model GA with ring migration and a Monitor",
        make: make_essim_ea,
    },
    SystemSpec {
        name: "ESSIM-DE",
        description: "island DE + diversity injection + tuning operators",
        make: make_essim_de,
    },
    SystemSpec {
        name: "ESS-NS",
        description: "novelty-search GA emitting bestSet (the paper's Fig. 3)",
        make: make_ess_ns,
    },
];

/// Every registered system, baseline order.
pub fn all() -> &'static [SystemSpec] {
    REGISTRY
}

/// Canonical system names, baseline order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

/// Resolves a system by name, case-insensitively and treating `_` and `-`
/// as equivalent (so `ess-ns`, `ESS_NS` and `ESS-NS` all resolve).
pub fn by_name(name: &str) -> Option<&'static SystemSpec> {
    let wanted = normalize(name);
    REGISTRY.iter().find(|s| normalize(s.name) == wanted)
}

/// [`by_name`] with the service error taxonomy.
pub fn resolve(name: &str) -> Result<&'static SystemSpec, ServiceError> {
    by_name(name).ok_or_else(|| ServiceError::UnknownSystem(name.to_string()))
}

fn normalize(name: &str) -> String {
    name.trim()
        .chars()
        .map(|c| match c {
            '_' => '-',
            c => c.to_ascii_lowercase(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_constructs_and_reports_its_name() {
        for spec in all() {
            let opt = spec.make(1.0);
            assert_eq!(opt.name(), spec.name);
            let _ = spec.make(0.25); // tiny budgets must not panic
        }
        assert_eq!(names(), vec!["ESS", "ESSIM-EA", "ESSIM-DE", "ESS-NS"]);
    }

    #[test]
    fn lookup_is_case_and_separator_insensitive() {
        for alias in ["ESS-NS", "ess-ns", "Ess_Ns", "  ESS-NS "] {
            assert_eq!(by_name(alias).expect("alias resolves").name, "ESS-NS");
        }
        assert!(by_name("ESS-XYZ").is_none());
        assert!(matches!(
            resolve("nope"),
            Err(ServiceError::UnknownSystem(ref n)) if n == "nope"
        ));
    }
}
