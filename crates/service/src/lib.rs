//! `ess-service` — prediction as a service: the session-based run API,
//! the unified system registry, and the multi-session scheduler over one
//! shared evaluation backend.
//!
//! The paper's prediction systems are *online*: each step consumes a newly
//! observed fire interval and emits the next forecast. The old public API
//! hid that behind run-to-completion calls — no progress, no cancellation,
//! no way to interleave runs. This crate is the serving layer that
//! replaces it:
//!
//! * [`systems`] — the registry mirroring `ess::cases`: all four paper
//!   systems ([`systems::by_name`]) as budget-scalable `StepOptimizer`
//!   factories;
//! * [`RunSpec`] — one builder-style request type (system × case ×
//!   backend × seed × replicates × weight × budgets) subsuming the
//!   scattered per-system config structs, JSON-serializable for the wire
//!   ([`RunSpec::to_json`]/[`RunSpec::from_json`]);
//! * [`PredictionSession`] — the re-entrant step driver:
//!   [`PredictionSession::advance`] executes one prediction step and
//!   yields a [`SessionEvent`]; budgets stop runs between steps,
//!   cancellation and observers come for free, and a drained session is
//!   bit-identical to the old batch path (same `ess::StepDriver`
//!   underneath);
//! * [`SessionSnapshot`] — checkpoint/resume:
//!   [`PredictionSession::snapshot`] serializes a live run's
//!   deterministic coordinates through [`jsonio`], and restoring replays
//!   the driver's seed stream so the continuation is bit-identical to
//!   never having stopped;
//! * [`Scheduler`] — N concurrent sessions multiplexed over one
//!   [`ess::fitness::SharedScenarioPool`] under a pluggable
//!   [`SchedulePolicy`] ([`policy`]: round-robin, weighted fair share,
//!   deadline first), so the whole process shares a single worker pool
//!   instead of spawning one per run per step;
//! * [`serve`](mod@serve) — the dependency-free line-delimited JSON loop
//!   `harness serve` speaks: protocol v1 (PR 3, still served unchanged)
//!   plus protocol v2 ([`proto`] — versioned typed envelopes, streaming
//!   `progress` frames, snapshot/restore, bounded `advance`);
//! * [`jsonio`] — the hand-rolled JSON writer/reader shared with the
//!   bench harness's `BENCH_*.json` emission.
//!
//! The typed client for protocol v2 lives in the sibling `ess-client`
//! crate. Failures are typed ([`ServiceError`]): unknown system, unknown
//! case, bad spec, budget exhausted — never a silent `None`.

pub mod jsonio;
pub mod policy;
pub mod proto;
pub mod scheduler;
pub mod serve;
pub mod session;
pub mod snapshot;
pub mod spec;
pub mod systems;

pub use ess::error::{BudgetReason, ServiceError};
pub use policy::{PolicyKind, SchedulePolicy, SessionMeta};
pub use scheduler::{DrainSignal, Scheduler, SessionId, SessionOutcome};
pub use serve::{serve, serve_configured, serve_with, ServeSummary};
pub use session::{PredictionSession, SessionEvent, StepPlan};
pub use snapshot::SessionSnapshot;
pub use spec::{Budget, RunSpec};
