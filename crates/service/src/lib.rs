//! `ess-service` — prediction as a service: the session-based run API,
//! the unified system registry, and the multi-session scheduler over one
//! shared evaluation backend.
//!
//! The paper's prediction systems are *online*: each step consumes a newly
//! observed fire interval and emits the next forecast. The old public API
//! hid that behind run-to-completion calls — no progress, no cancellation,
//! no way to interleave runs. This crate is the serving layer that
//! replaces it:
//!
//! * [`systems`] — the registry mirroring `ess::cases`: all four paper
//!   systems ([`systems::by_name`]) as budget-scalable `StepOptimizer`
//!   factories;
//! * [`RunSpec`] — one builder-style request type (system × case ×
//!   backend × seed × replicates × budgets) subsuming the scattered
//!   per-system config structs;
//! * [`PredictionSession`] — the re-entrant step driver:
//!   [`PredictionSession::advance`] executes one prediction step and
//!   yields a [`SessionEvent`]; budgets stop runs between steps,
//!   cancellation and observers come for free, and a drained session is
//!   bit-identical to the old batch path (same `ess::StepDriver`
//!   underneath);
//! * [`Scheduler`] — N concurrent sessions multiplexed fairly
//!   (round-robin, one step each) over one
//!   [`ess::fitness::SharedScenarioPool`], so the whole process shares a
//!   single worker pool instead of spawning one per run per step;
//! * [`serve`](mod@serve) — the dependency-free line-delimited JSON
//!   protocol `harness serve` speaks, built on [`jsonio`];
//! * [`jsonio`] — the hand-rolled JSON writer/reader shared with the
//!   bench harness's `BENCH_*.json` emission.
//!
//! Failures are typed ([`ServiceError`]): unknown system, unknown case,
//! bad spec, budget exhausted — never a silent `None`.

pub mod jsonio;
pub mod scheduler;
pub mod serve;
pub mod session;
pub mod spec;
pub mod systems;

pub use ess::error::{BudgetReason, ServiceError};
pub use scheduler::{Scheduler, SessionId, SessionOutcome};
pub use serve::{serve, ServeSummary};
pub use session::{PredictionSession, SessionEvent};
pub use spec::{Budget, RunSpec};
