//! Re-entrant prediction sessions: the online run API.
//!
//! A [`PredictionSession`] wraps the `ess` crate's resumable
//! [`StepDriver`] together with its optimizer, a [`Budget`] and observer
//! callbacks. Each [`PredictionSession::advance`] call executes **one**
//! prediction step (one observed fire interval consumed, one forecast
//! emitted) and yields a [`SessionEvent`], so callers can interleave many
//! runs, stream progress, stop early, or cancel between steps — none of
//! which the old run-to-completion `run()` allowed. Draining a session to
//! its terminal event is exactly the batch path (same driver, same seeds),
//! so batch and session reports are bit-identical by construction.

use crate::snapshot::SessionSnapshot;
use crate::spec::{Budget, RunSpec};
use ess::cases::BurnCase;
use ess::error::{BudgetReason, ServiceError};
use ess::pipeline::{EvalStrategy, RunReport, StepDriver, StepOptimizer, StepReport};
use parworker::Stopwatch;
use std::time::Instant;

/// Where a session came from: the spec that built it and which replicate
/// it is — everything a [`SessionSnapshot`] needs to rebuild the run.
#[derive(Debug, Clone)]
pub(crate) struct Provenance {
    /// The originating request.
    pub spec: RunSpec,
    /// Replicate index within the request.
    pub replicate: usize,
}

/// What one [`PredictionSession::advance`] call produced.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// One prediction step ran to completion; the session is still live.
    StepCompleted(StepReport),
    /// Every step has run; the full report. Terminal — further `advance`
    /// calls return this same event.
    Finished(RunReport),
    /// A budget fired (or the session was cancelled) before the final
    /// step; the partial report covers the completed steps. Terminal.
    BudgetExhausted {
        /// Which budget stopped the run.
        reason: BudgetReason,
        /// Steps completed before exhaustion.
        partial: RunReport,
    },
}

impl SessionEvent {
    /// True for [`SessionEvent::Finished`] and
    /// [`SessionEvent::BudgetExhausted`].
    pub fn is_terminal(&self) -> bool {
        !matches!(self, SessionEvent::StepCompleted(_))
    }
}

/// Outcome of [`PredictionSession::plan_step`]: either the session can run
/// one step, or it settled without running one.
#[derive(Debug)]
pub enum StepPlan {
    /// The next step may run (via [`PredictionSession::step_parts`] +
    /// [`PredictionSession::complete_step`], or simply by calling
    /// [`PredictionSession::advance`]).
    Ready,
    /// The session settled without running a step — it was already
    /// terminal, had finished every step, or a budget fired first. The
    /// event is what `advance` would have returned.
    Settled(SessionEvent),
}

/// Observer callback invoked after every fresh event (steps and the
/// terminal event; replayed terminal events do not re-notify).
pub type Observer = Box<dyn FnMut(&SessionEvent)>;

/// A resumable prediction run over one burn case.
pub struct PredictionSession {
    driver: StepDriver,
    optimizer: Box<dyn StepOptimizer>,
    budget: Budget,
    weight: f64,
    steps: Vec<StepReport>,
    evaluations_spent: u64,
    driven_ms: f64,
    started: Option<Instant>,
    terminal: Option<SessionEvent>,
    observers: Vec<Observer>,
    provenance: Option<Provenance>,
}

impl PredictionSession {
    /// Builds a session positioned before the first prediction step.
    /// `strategy` decides whether the session owns its workers
    /// ([`EvalStrategy::PerStep`]) or multiplexes a shared pool
    /// ([`EvalStrategy::Shared`] — the scheduler configuration).
    pub fn new(
        case: BurnCase,
        optimizer: Box<dyn StepOptimizer>,
        strategy: EvalStrategy,
        base_seed: u64,
        budget: Budget,
    ) -> Self {
        Self {
            driver: StepDriver::new(case, strategy, base_seed),
            optimizer,
            budget,
            weight: 1.0,
            steps: Vec::new(),
            evaluations_spent: 0,
            driven_ms: 0.0,
            started: None,
            terminal: None,
            observers: Vec::new(),
            provenance: None,
        }
    }

    /// Rebuilds a session from checkpoint state: a driver already
    /// positioned after the completed steps, the accumulated reports, and
    /// the provenance the snapshot will need again. The deadline clock
    /// restarts on the first post-restore `advance` — wall time spent
    /// before the checkpoint is billed via `driven_ms`, not the deadline.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restored(
        driver: StepDriver,
        optimizer: Box<dyn StepOptimizer>,
        budget: Budget,
        weight: f64,
        steps: Vec<StepReport>,
        driven_ms: f64,
        provenance: Provenance,
    ) -> Self {
        let evaluations_spent = steps.iter().map(|s| s.evaluations).sum();
        Self {
            driver,
            optimizer,
            budget,
            weight,
            steps,
            evaluations_spent,
            driven_ms,
            started: None,
            terminal: None,
            observers: Vec::new(),
            provenance: Some(provenance),
        }
    }

    /// Tags the session with the spec (and replicate index) that built it,
    /// enabling [`PredictionSession::snapshot`] — and applies the spec's
    /// session-level knobs (fair-share weight, propagation kernel).
    pub(crate) fn set_provenance(&mut self, spec: RunSpec, replicate: usize) {
        self.weight = spec.share_weight();
        self.driver.set_kernel(spec.sim_kernel());
        self.provenance = Some(Provenance { spec, replicate });
    }

    /// Fair-share weight (1 unless the originating spec set one) — the
    /// knob `WeightedFairShare` scheduling reads.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The stopping budgets in force.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Wall-clock time left before the deadline budget fires (`None`
    /// without a deadline budget; the full budget before the first
    /// `advance` starts the clock). This is what deadline-aware
    /// scheduling should order by — the raw budget misjudges urgency once
    /// sessions have started at different times.
    pub fn deadline_remaining(&self) -> Option<std::time::Duration> {
        let deadline = self.budget.deadline?;
        let elapsed = self
            .started
            .map(|s| s.elapsed())
            .unwrap_or(std::time::Duration::ZERO);
        Some(deadline.saturating_sub(elapsed))
    }

    /// Serializable checkpoint of the run so far: the originating spec,
    /// the replicate index, and every completed [`StepReport`]. Restoring
    /// the snapshot replays the driver's deterministic seed stream, so the
    /// continuation is bit-identical to never having stopped.
    ///
    /// # Errors
    /// [`ServiceError::BadSpec`] for sessions built without a [`RunSpec`]
    /// (hand-assembled via [`PredictionSession::new`]) — they have no
    /// serializable provenance to rebuild from.
    pub fn snapshot(&self) -> Result<SessionSnapshot, ServiceError> {
        let p = self.provenance.as_ref().ok_or_else(|| {
            ServiceError::BadSpec(
                "session was built without a RunSpec, so it has no serializable \
                 provenance to snapshot (build it through RunSpec::session*)"
                    .into(),
            )
        })?;
        Ok(SessionSnapshot::new(
            p.spec.clone(),
            p.replicate,
            self.steps.clone(),
            self.driven_ms,
        ))
    }

    /// The system being run.
    pub fn system(&self) -> &'static str {
        self.optimizer.name()
    }

    /// The case being predicted.
    pub fn case_name(&self) -> &'static str {
        self.driver.case().name
    }

    /// Steps completed so far.
    pub fn steps(&self) -> &[StepReport] {
        &self.steps
    }

    /// Total steps a full run would execute.
    pub fn total_steps(&self) -> usize {
        self.driver.total_steps()
    }

    /// Scenario evaluations spent so far.
    pub fn evaluations_spent(&self) -> u64 {
        self.evaluations_spent
    }

    /// True once the session reached a terminal event (finished, budget
    /// exhausted, or cancelled).
    pub fn is_done(&self) -> bool {
        self.terminal.is_some()
    }

    /// Registers an observer notified after every fresh event.
    pub fn observe(&mut self, observer: impl FnMut(&SessionEvent) + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// Snapshot of the run so far (the full report once finished).
    /// `total_ms` counts time spent inside `advance` only, so multiplexed
    /// sessions are not billed for time spent waiting on their peers.
    pub fn report(&self) -> RunReport {
        RunReport {
            system: self.optimizer.name(),
            case: self.driver.case().name,
            steps: self.steps.clone(),
            total_ms: self.driven_ms,
        }
    }

    /// Executes the next prediction step (or reports why it cannot run):
    ///
    /// * [`SessionEvent::StepCompleted`] — one more step ran;
    /// * [`SessionEvent::Finished`] — all steps had already run;
    /// * [`SessionEvent::BudgetExhausted`] — a budget fired first.
    ///
    /// Terminal events are sticky: once finished/exhausted/cancelled,
    /// every further call returns the same event without running anything.
    pub fn advance(&mut self) -> SessionEvent {
        match self.plan_step() {
            StepPlan::Settled(event) => event,
            StepPlan::Ready => {
                let sw = Stopwatch::start();
                match self.driver.step(self.optimizer.as_mut()) {
                    Some(step) => {
                        let elapsed = sw.elapsed_ms();
                        self.complete_step(step, elapsed)
                    }
                    // A `Ready` plan just checked `is_finished`, so the
                    // driver cannot refuse — but a typed settle keeps
                    // the serve loop panic-free instead of trusting it.
                    None => self.settle(sw, None),
                }
            }
        }
    }

    /// The pre-step half of [`PredictionSession::advance`]: replays a
    /// sticky terminal event, starts the deadline clock, settles a
    /// finished run or a fired budget — or declares the next step
    /// runnable. A fused scheduler round plans every session first, runs
    /// the `Ready` ones' steps on worker threads via
    /// [`PredictionSession::step_parts`], and books the results with
    /// [`PredictionSession::complete_step`]; `plan → run → complete` is
    /// `advance` exactly, just with the step relocated.
    pub fn plan_step(&mut self) -> StepPlan {
        if let Some(done) = &self.terminal {
            return StepPlan::Settled(done.clone());
        }
        let sw = Stopwatch::start();
        // lint: allow(wall-clock) — deadline-first scheduling needs real elapsed time; fitness results never depend on it
        let started = *self.started.get_or_insert_with(Instant::now);

        if self.driver.is_finished() {
            return StepPlan::Settled(self.settle(sw, None));
        }
        if let Some(reason) = self.budget_fired(started) {
            return StepPlan::Settled(self.settle(sw, Some(reason)));
        }
        StepPlan::Ready
    }

    /// Disjoint mutable access to the driver and its optimizer, so a
    /// planned step can run on a worker thread (both halves are `Send`;
    /// observers and bookkeeping stay behind on the session).
    pub fn step_parts(&mut self) -> (&mut StepDriver, &mut dyn StepOptimizer) {
        (&mut self.driver, self.optimizer.as_mut())
    }

    /// The post-step half of [`PredictionSession::advance`]: books a step
    /// executed externally (evaluation counts, report, billed time) and
    /// notifies observers. `elapsed_ms` is the wall time the step itself
    /// took, so multiplexed sessions are still not billed for peers.
    ///
    /// A session cancelled between plan and complete keeps its terminal
    /// event and discards the step — the cancellation won the race.
    pub fn complete_step(&mut self, step: StepReport, elapsed_ms: f64) -> SessionEvent {
        if let Some(done) = &self.terminal {
            return done.clone();
        }
        self.evaluations_spent += step.evaluations;
        self.steps.push(step.clone());
        self.driven_ms += elapsed_ms;
        let event = SessionEvent::StepCompleted(step);
        self.notify(&event);
        event
    }

    /// Cancels the session between steps: the terminal event becomes
    /// [`SessionEvent::BudgetExhausted`] with [`BudgetReason::Cancelled`]
    /// and the partial report of the steps completed so far. Cancelling a
    /// session that already reached a terminal event is a no-op.
    pub fn cancel(&mut self) {
        if self.terminal.is_none() {
            let event = SessionEvent::BudgetExhausted {
                reason: BudgetReason::Cancelled,
                partial: self.report(),
            };
            self.notify(&event);
            self.terminal = Some(event);
        }
    }

    /// Drives the session to its terminal event — the batch path.
    ///
    /// # Errors
    /// [`ServiceError::BudgetExhausted`] when a budget (or cancellation)
    /// stopped the run before the final step.
    pub fn drain(&mut self) -> Result<RunReport, ServiceError> {
        loop {
            match self.advance() {
                SessionEvent::StepCompleted(_) => continue,
                SessionEvent::Finished(report) => return Ok(report),
                SessionEvent::BudgetExhausted { reason, partial } => {
                    return Err(ServiceError::BudgetExhausted {
                        reason,
                        partial: Box::new(partial),
                    })
                }
            }
        }
    }

    /// Checks the budgets that can stop the *next* step from starting.
    fn budget_fired(&self, started: Instant) -> Option<BudgetReason> {
        if let Some(max) = self.budget.max_steps {
            if self.steps.len() >= max {
                return Some(BudgetReason::MaxSteps);
            }
        }
        if let Some(max) = self.budget.max_evaluations {
            if self.evaluations_spent >= max {
                return Some(BudgetReason::MaxEvaluations);
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if started.elapsed() >= deadline {
                return Some(BudgetReason::Deadline);
            }
        }
        None
    }

    /// Records the terminal event (`None` reason = finished), bills the
    /// time, notifies observers.
    fn settle(&mut self, sw: Stopwatch, reason: Option<BudgetReason>) -> SessionEvent {
        self.driven_ms += sw.elapsed_ms();
        let event = match reason {
            None => SessionEvent::Finished(self.report()),
            Some(reason) => SessionEvent::BudgetExhausted {
                reason,
                partial: self.report(),
            },
        };
        self.notify(&event);
        self.terminal = Some(event.clone());
        event
    }

    fn notify(&mut self, event: &SessionEvent) {
        for observer in &mut self.observers {
            observer(event);
        }
    }
}

impl std::fmt::Debug for PredictionSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionSession")
            .field("system", &self.system())
            .field("case", &self.case_name())
            .field("completed", &self.steps.len())
            .field("total_steps", &self.total_steps())
            .field("done", &self.is_done())
            .finish_non_exhaustive()
    }
}
