//! Protocol v2: the versioned, typed request/response envelope.
//!
//! Every v2 line is a JSON object carrying `"v":2`. Client → server lines
//! are **requests** — `{"v":2,"id":N,"kind":...}` with a client-chosen
//! correlation id — and server → client lines are **frames**: either a
//! *reply* (echoes the request's `id`) or an *async event* (no `id`;
//! `progress` and `done`, keyed by session). The serve loop and the
//! `ess-client` crate both build and parse these through this module, so
//! the two sides cannot drift.
//!
//! ```text
//! request kinds                      reply kinds
//!   run      {spec, watch}     →       accepted  {sessions}
//!   restore  {snapshot, watch} →       accepted  {sessions}
//!   advance  {rounds}          →       advanced  {rounds, live}
//!   snapshot {session}         →       snapshot  {session, snapshot}
//!   cancel   {session}         →       cancelled {session}
//!   drain    {}                →       drained   {sessions}
//!   quit     {}                →       bye       {}
//!   (anything malformed)       →       error     {message}
//!
//! async frames (between request handling, as scheduler rounds advance)
//!   progress {session, step, evaluations, best}     — watched sessions
//!   done     {session, status, reason, system, case,
//!             steps, mean_quality, total_evaluations, wall_ms}
//! ```
//!
//! Version sniff: a line whose object has `"v":2` is a v2 request; a line
//! with an `"op"` member is a v1 request (the PR 3 protocol, still served
//! unchanged); anything else is an error event. Replies to v1 requests
//! stay in the v1 event dialect, so old clients never see an envelope they
//! cannot parse.

use crate::jsonio::Json;
use crate::scheduler::SessionId;
use crate::snapshot::SessionSnapshot;
use crate::spec::RunSpec;

/// The protocol version this module speaks.
pub const VERSION: u64 = 2;

/// A client → server envelope: correlation id + payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: u64,
    /// The operation.
    pub kind: RequestKind,
}

/// Every v2 request payload.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Submit every replicate of a spec; `watch` subscribes the client to
    /// `progress` frames for the accepted sessions.
    Run {
        /// The run request.
        spec: RunSpec,
        /// Subscribe to per-step progress frames.
        watch: bool,
    },
    /// Resume a checkpointed session from its snapshot.
    Restore {
        /// The serialized checkpoint.
        snapshot: SessionSnapshot,
        /// Subscribe to per-step progress frames.
        watch: bool,
    },
    /// Run up to this many scheduler rounds (0 is allowed and a no-op),
    /// streaming events, then report how many rounds ran and how many
    /// sessions are still live.
    Advance {
        /// Upper bound on rounds to run.
        rounds: usize,
    },
    /// Checkpoint a live session.
    Snapshot {
        /// The session to checkpoint.
        session: SessionId,
    },
    /// Cancel a live session between steps.
    Cancel {
        /// The session to cancel.
        session: SessionId,
    },
    /// Run rounds until no session is live.
    Drain,
    /// End the serve loop.
    Quit,
}

impl Request {
    /// Serializes the envelope (`{"v":2,"id":…,"kind":…,…}`).
    pub fn to_json(&self) -> Json {
        let base = Json::obj().field("v", VERSION).field("id", self.id);
        match &self.kind {
            RequestKind::Run { spec, watch } => base
                .field("kind", "run")
                .field("spec", spec.to_json())
                .field("watch", *watch),
            RequestKind::Restore { snapshot, watch } => base
                .field("kind", "restore")
                .field("snapshot", snapshot.to_json())
                .field("watch", *watch),
            RequestKind::Advance { rounds } => {
                base.field("kind", "advance").field("rounds", *rounds)
            }
            RequestKind::Snapshot { session } => {
                base.field("kind", "snapshot").field("session", *session)
            }
            RequestKind::Cancel { session } => {
                base.field("kind", "cancel").field("session", *session)
            }
            RequestKind::Drain => base.field("kind", "drain"),
            RequestKind::Quit => base.field("kind", "quit"),
        }
    }

    /// Parses a v2 request envelope (the caller has already sniffed
    /// `"v":2`).
    ///
    /// # Errors
    /// A one-line description naming the offending member.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        match v.get("v").and_then(Json::as_u64) {
            Some(VERSION) => {}
            Some(other) => {
                return Err(format!(
                    "unsupported protocol version {other} (this server speaks v{VERSION} and v1)"
                ))
            }
            None => return Err("request needs a numeric 'v'".into()),
        }
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("request needs a non-negative 'id' integer")?;
        let watch = || v.get("watch").and_then(Json::as_bool).unwrap_or(false);
        let session = || {
            v.get("session")
                .and_then(Json::as_u64)
                .ok_or("request needs a 'session' id")
        };
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("run") => RequestKind::Run {
                spec: RunSpec::from_json(v.get("spec").ok_or("run needs a 'spec' object")?)?,
                watch: watch(),
            },
            Some("restore") => RequestKind::Restore {
                snapshot: SessionSnapshot::from_json(
                    v.get("snapshot")
                        .ok_or("restore needs a 'snapshot' object")?,
                )?,
                watch: watch(),
            },
            Some("advance") => RequestKind::Advance {
                rounds: v
                    .get("rounds")
                    .and_then(Json::as_u64)
                    .ok_or("advance needs a non-negative 'rounds' integer")?
                    as usize,
            },
            Some("snapshot") => RequestKind::Snapshot {
                session: session()?,
            },
            Some("cancel") => RequestKind::Cancel {
                session: session()?,
            },
            Some("drain") => RequestKind::Drain,
            Some("quit") => RequestKind::Quit,
            Some(other) => return Err(format!("unknown v2 request kind '{other}'")),
            None => return Err("request needs a 'kind' string".into()),
        };
        Ok(Request { id, kind })
    }
}

/// The terminal status carried by a [`Frame::Done`] event.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneFrame {
    /// Which session finished.
    pub session: SessionId,
    /// `"finished"`, `"exhausted"` or `"cancelled"`.
    pub status: String,
    /// The budget reason for non-finished sessions.
    pub reason: Option<String>,
    /// System name.
    pub system: String,
    /// Case name.
    pub case: String,
    /// Steps completed.
    pub steps: usize,
    /// Mean prediction quality over the scored steps.
    pub mean_quality: f64,
    /// Total scenario evaluations spent.
    pub total_evaluations: u64,
    /// Wall-clock milliseconds billed to the session.
    pub wall_ms: f64,
}

/// A server → client envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// One watched session completed one step.
    Progress {
        /// Which session stepped.
        session: SessionId,
        /// Step index just completed.
        step: usize,
        /// Scenario evaluations spent so far (cumulative).
        evaluations: u64,
        /// Best optimizer fitness seen so far across steps.
        best: f64,
    },
    /// A session reached its terminal event.
    Done(DoneFrame),
    /// A reply to the request with this correlation id.
    Reply {
        /// Echo of the request id.
        id: u64,
        /// The reply payload.
        reply: Reply,
    },
}

/// Every v2 reply payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Sessions were admitted (one per replicate, submission order).
    Accepted {
        /// Assigned session ids.
        sessions: Vec<SessionId>,
    },
    /// An `advance` request completed.
    Advanced {
        /// Rounds actually run (≤ requested).
        rounds: usize,
        /// Sessions still live afterwards.
        live: usize,
    },
    /// A checkpoint of the requested session.
    Snapshot {
        /// The checkpointed session.
        session: SessionId,
        /// The serialized checkpoint (boxed: a snapshot embeds the whole
        /// spec and step history, far larger than any other reply).
        snapshot: Box<SessionSnapshot>,
    },
    /// The session was cancelled.
    Cancelled {
        /// The cancelled session.
        session: SessionId,
    },
    /// A `drain` request completed.
    Drained {
        /// Sessions that reached a terminal event during the drain.
        sessions: usize,
    },
    /// The serve loop is ending.
    Bye,
    /// The request failed; nothing was enqueued.
    Error {
        /// One-line description.
        message: String,
    },
}

impl Frame {
    /// Serializes the frame (`{"v":2,...}`).
    pub fn to_json(&self) -> Json {
        let base = Json::obj().field("v", VERSION);
        match self {
            Frame::Progress {
                session,
                step,
                evaluations,
                best,
            } => base
                .field("kind", "progress")
                .field("session", *session)
                .field("step", *step)
                .field("evaluations", *evaluations)
                .field("best", *best),
            Frame::Done(d) => base
                .field("kind", "done")
                .field("session", d.session)
                .field("status", d.status.as_str())
                .field("reason", d.reason.clone())
                .field("system", d.system.as_str())
                .field("case", d.case.as_str())
                .field("steps", d.steps)
                .field("mean_quality", d.mean_quality)
                .field("total_evaluations", d.total_evaluations)
                .field("wall_ms", d.wall_ms),
            Frame::Reply { id, reply } => {
                let base = base.field("id", *id);
                match reply {
                    Reply::Accepted { sessions } => base.field("kind", "accepted").field(
                        "sessions",
                        Json::Arr(sessions.iter().map(|s| Json::from(*s)).collect()),
                    ),
                    Reply::Advanced { rounds, live } => base
                        .field("kind", "advanced")
                        .field("rounds", *rounds)
                        .field("live", *live),
                    Reply::Snapshot { session, snapshot } => base
                        .field("kind", "snapshot")
                        .field("session", *session)
                        .field("snapshot", snapshot.to_json()),
                    Reply::Cancelled { session } => {
                        base.field("kind", "cancelled").field("session", *session)
                    }
                    Reply::Drained { sessions } => {
                        base.field("kind", "drained").field("sessions", *sessions)
                    }
                    Reply::Bye => base.field("kind", "bye"),
                    Reply::Error { message } => base
                        .field("kind", "error")
                        .field("message", message.as_str()),
                }
            }
        }
    }

    /// Parses a v2 frame.
    ///
    /// # Errors
    /// A one-line description naming the offending member.
    pub fn from_json(v: &Json) -> Result<Frame, String> {
        match v.get("v").and_then(Json::as_u64) {
            Some(VERSION) => {}
            _ => return Err("frame needs '\"v\":2'".into()),
        }
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("frame needs a 'kind' string")?;
        let session = || {
            v.get("session")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("'{kind}' frame needs a 'session' id"))
        };
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("'{kind}' frame needs a numeric '{key}'"))
        };
        let int = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("'{kind}' frame needs a non-negative '{key}' integer"))
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("'{kind}' frame needs a '{key}' string"))
        };
        if kind == "progress" {
            return Ok(Frame::Progress {
                session: session()?,
                step: int("step")? as usize,
                evaluations: int("evaluations")?,
                best: num("best")?,
            });
        }
        if kind == "done" {
            return Ok(Frame::Done(DoneFrame {
                session: session()?,
                status: text("status")?,
                reason: match v.get("reason") {
                    None | Some(Json::Null) => None,
                    Some(r) => Some(
                        r.as_str()
                            .ok_or("'reason' must be a string or null")?
                            .to_string(),
                    ),
                },
                system: text("system")?,
                case: text("case")?,
                steps: int("steps")? as usize,
                mean_quality: num("mean_quality")?,
                total_evaluations: int("total_evaluations")?,
                wall_ms: num("wall_ms")?,
            }));
        }
        // Everything else is a reply and must carry the correlation id.
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("'{kind}' reply needs an 'id'"))?;
        let reply = match kind {
            "accepted" => Reply::Accepted {
                sessions: v
                    .get("sessions")
                    .and_then(Json::as_arr)
                    .ok_or("'accepted' reply needs a 'sessions' array")?
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .ok_or("session ids must be non-negative integers")
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "advanced" => Reply::Advanced {
                rounds: int("rounds")? as usize,
                live: int("live")? as usize,
            },
            "snapshot" => Reply::Snapshot {
                session: session()?,
                snapshot: Box::new(SessionSnapshot::from_json(
                    v.get("snapshot")
                        .ok_or("'snapshot' reply needs a 'snapshot' object")?,
                )?),
            },
            "cancelled" => Reply::Cancelled {
                session: session()?,
            },
            "drained" => Reply::Drained {
                sessions: int("sessions")? as usize,
            },
            "bye" => Reply::Bye,
            "error" => Reply::Error {
                message: text("message")?,
            },
            other => return Err(format!("unknown v2 frame kind '{other}'")),
        };
        Ok(Frame::Reply { id, reply })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let spec = RunSpec::new("ESS-NS", "meadow_small")
            .seed(3)
            .scale(0.25)
            .weight(2.0)
            .max_steps(2);
        let requests = vec![
            Request {
                id: 1,
                kind: RequestKind::Run {
                    spec: spec.clone(),
                    watch: true,
                },
            },
            Request {
                id: 2,
                kind: RequestKind::Advance { rounds: 3 },
            },
            Request {
                id: 3,
                kind: RequestKind::Snapshot { session: 4 },
            },
            Request {
                id: 4,
                kind: RequestKind::Cancel { session: 4 },
            },
            Request {
                id: 5,
                kind: RequestKind::Drain,
            },
            Request {
                id: 6,
                kind: RequestKind::Quit,
            },
        ];
        for request in requests {
            let line = request.to_json().to_string();
            let parsed = Request::from_json(&Json::parse(&line).expect("valid line"))
                .expect("request parses");
            assert_eq!(parsed, request, "{line}");
        }
    }

    #[test]
    fn version_sniff_rejects_other_versions() {
        let err = Request::from_json(&Json::parse(r#"{"v":3,"id":1,"kind":"drain"}"#).unwrap())
            .expect_err("v3 rejected");
        assert!(err.contains("unsupported protocol version 3"), "{err}");
    }

    #[test]
    fn frames_round_trip_through_json() {
        let frames = vec![
            Frame::Progress {
                session: 2,
                step: 3,
                evaluations: 120,
                best: 0.875,
            },
            Frame::Done(DoneFrame {
                session: 2,
                status: "exhausted".into(),
                reason: Some("max-steps".into()),
                system: "ESS-NS".into(),
                case: "meadow_small".into(),
                steps: 3,
                mean_quality: 0.5,
                total_evaluations: 360,
                wall_ms: 12.25,
            }),
            Frame::Reply {
                id: 9,
                reply: Reply::Accepted {
                    sessions: vec![1, 2],
                },
            },
            Frame::Reply {
                id: 10,
                reply: Reply::Advanced { rounds: 2, live: 1 },
            },
            Frame::Reply {
                id: 11,
                reply: Reply::Cancelled { session: 1 },
            },
            Frame::Reply {
                id: 12,
                reply: Reply::Drained { sessions: 4 },
            },
            Frame::Reply {
                id: 13,
                reply: Reply::Bye,
            },
            Frame::Reply {
                id: 14,
                reply: Reply::Error {
                    message: "unknown case 'x'".into(),
                },
            },
        ];
        for frame in frames {
            let line = frame.to_json().to_string();
            let parsed =
                Frame::from_json(&Json::parse(&line).expect("valid line")).expect("frame parses");
            assert_eq!(parsed, frame, "{line}");
        }
    }
}
