//! The line-delimited JSON serve protocol.
//!
//! One request per input line, one or more event objects per line of
//! output — dependency-free, so `harness serve` can speak it over
//! stdin/stdout and tests can drive it through in-memory buffers.
//!
//! Requests (`op` selects):
//!
//! ```text
//! {"op":"run","system":"ESS-NS","case":"meadow_small","seed":7,
//!  "replicates":2,"scale":0.25,"max_steps":3,"max_evaluations":9000,
//!  "deadline_ms":60000}                  → {"event":"accepted","session":N} per replicate
//! {"op":"cancel","session":2}            → {"event":"cancelled","session":2}
//! {"op":"drain"}                         → step/done events, then {"event":"drained",...}
//! {"op":"quit"}                          → {"event":"bye"} and the loop ends
//! ```
//!
//! Execution always happens on the **server's** shared pool (every session
//! of every client multiplexes one worker pool — that is the point of the
//! serving layer), so a request carrying a `backend` field is rejected
//! rather than silently ignored. End of input implies `drain` (pending
//! sessions still run) and then `quit`, so piping a canned request file
//! works without a trailing quit line. Malformed lines produce an
//! `{"event":"error",...}` line and the loop continues — one bad request
//! must not take down a server multiplexing other clients' sessions.

use crate::jsonio::Json;
use crate::scheduler::{Scheduler, SessionOutcome};
use crate::session::SessionEvent;
use crate::spec::RunSpec;
use ess::fitness::EvalBackend;
use ess::pipeline::RunReport;
use std::io::{self, BufRead, Write};

/// Counters the serve loop reports when it exits (the `--self-test`
/// assertions run against these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Sessions accepted.
    pub accepted: usize,
    /// Sessions that ran every step.
    pub finished: usize,
    /// Sessions stopped by a budget.
    pub exhausted: usize,
    /// Sessions cancelled by request.
    pub cancelled: usize,
    /// Request lines answered with an error event.
    pub errors: usize,
}

/// Runs the serve loop: reads requests from `input` until `quit` or end of
/// input, writes event lines to `out`, executes every session on one
/// shared pool built from `backend`.
///
/// # Errors
/// Propagates I/O errors from the transport; protocol-level problems are
/// reported in-band as `error` events.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    mut out: W,
    backend: EvalBackend,
) -> io::Result<ServeSummary> {
    let mut scheduler = Scheduler::new(backend);
    let mut summary = ServeSummary::default();

    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                emit_error(&mut out, &mut summary, &e.to_string())?;
                continue;
            }
        };
        match request.get("op").and_then(Json::as_str) {
            Some("run") => match spec_from_request(&request) {
                Ok(spec) => match scheduler.submit(&spec) {
                    Ok(ids) => {
                        for id in ids {
                            summary.accepted += 1;
                            emit(
                                &mut out,
                                Json::obj()
                                    .field("event", "accepted")
                                    .field("session", id)
                                    .field("system", spec.system_name())
                                    .field("case", spec.case_name()),
                            )?;
                        }
                    }
                    Err(e) => emit_error(&mut out, &mut summary, &e.to_string())?,
                },
                Err(reason) => emit_error(&mut out, &mut summary, &reason)?,
            },
            Some("cancel") => match request.get("session").and_then(Json::as_u64) {
                Some(id) if scheduler.cancel(id) => {
                    summary.cancelled += 1;
                    emit(
                        &mut out,
                        Json::obj().field("event", "cancelled").field("session", id),
                    )?;
                }
                Some(id) => emit_error(
                    &mut out,
                    &mut summary,
                    &format!("no live session {id} to cancel"),
                )?,
                None => emit_error(&mut out, &mut summary, "cancel needs a session id")?,
            },
            Some("drain") => drain(&mut scheduler, &mut out, &mut summary)?,
            Some("quit") => {
                emit(&mut out, Json::obj().field("event", "bye"))?;
                return Ok(summary);
            }
            Some(other) => emit_error(&mut out, &mut summary, &format!("unknown op '{other}'"))?,
            None => emit_error(&mut out, &mut summary, "request needs an 'op' field")?,
        }
    }
    // End of input: run whatever is still pending, then leave.
    drain(&mut scheduler, &mut out, &mut summary)?;
    emit(&mut out, Json::obj().field("event", "bye"))?;
    Ok(summary)
}

/// Builds a [`RunSpec`] from a `run` request object.
fn spec_from_request(request: &Json) -> Result<RunSpec, String> {
    let system = request
        .get("system")
        .and_then(Json::as_str)
        .ok_or("run needs a 'system' string")?;
    let case = request
        .get("case")
        .and_then(Json::as_str)
        .ok_or("run needs a 'case' string")?;
    if request.get("backend").is_some() {
        return Err(
            "requests cannot pick a backend: sessions share the server's pool \
             (choose it with `harness serve --backend ...`)"
                .to_string(),
        );
    }
    let mut spec = RunSpec::new(system, case);
    if let Some(v) = request.get("novelty") {
        // Unlike `backend`, the novelty engine is safe to pick per request:
        // it runs master-side in the session and its scores are
        // engine-independent, so it never touches the shared pool.
        let engine = v
            .as_str()
            .ok_or("'novelty' must be a string like \"sorted\", \"brute\" or \"sorted:4\"")?
            .parse()
            .map_err(|e: ess_ns::ParseNoveltyEngineError| e.to_string())?;
        spec = spec.novelty(engine);
    }
    if let Some(v) = request.get("seed") {
        spec = spec.seed(v.as_u64().ok_or("'seed' must be a non-negative integer")?);
    }
    if let Some(v) = request.get("replicates") {
        spec = spec.replicates(
            v.as_u64()
                .ok_or("'replicates' must be a positive integer")? as usize,
        );
    }
    if let Some(v) = request.get("scale") {
        spec = spec.scale(v.as_f64().ok_or("'scale' must be a number")?);
    }
    if let Some(v) = request.get("max_steps") {
        spec = spec.max_steps(v.as_u64().ok_or("'max_steps' must be a positive integer")? as usize);
    }
    if let Some(v) = request.get("max_evaluations") {
        spec = spec.max_evaluations(
            v.as_u64()
                .ok_or("'max_evaluations' must be a positive integer")?,
        );
    }
    if let Some(v) = request.get("deadline_ms") {
        spec = spec.deadline_ms(
            v.as_u64()
                .ok_or("'deadline_ms' must be a positive integer")?,
        );
    }
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// Drains the scheduler, streaming step events and per-session summaries.
fn drain<W: Write>(
    scheduler: &mut Scheduler,
    out: &mut W,
    summary: &mut ServeSummary,
) -> io::Result<()> {
    let before = scheduler.outcomes().len();
    let mut io_result = Ok(());
    scheduler.drain_with(|id, event| {
        if io_result.is_err() {
            return;
        }
        io_result = match event {
            SessionEvent::StepCompleted(step) => emit(
                out,
                Json::obj()
                    .field("event", "step")
                    .field("session", id)
                    .field("step", step.step)
                    .field("quality", step.quality)
                    .field("kign", step.kign)
                    .field("evaluations", step.evaluations)
                    .field("wall_ms", step.wall_ms),
            ),
            SessionEvent::Finished(report) => emit(out, done_event(id, "finished", None, report)),
            SessionEvent::BudgetExhausted { reason, partial } => emit(
                out,
                done_event(id, "exhausted", Some(&reason.to_string()), partial),
            ),
        };
    });
    io_result?;
    for (_, outcome) in &scheduler.outcomes()[before..] {
        match outcome {
            SessionOutcome::Finished(_) => summary.finished += 1,
            SessionOutcome::Exhausted { .. } => summary.exhausted += 1,
        }
    }
    let drained = scheduler.outcomes().len() - before;
    // Release the retained reports: a server process drains many times,
    // and nothing reads an outcome after its `done` event went out.
    let _ = scheduler.take_outcomes();
    emit(
        out,
        Json::obj()
            .field("event", "drained")
            .field("sessions", drained),
    )
}

/// One `done` line per completed session.
fn done_event(id: u64, status: &str, reason: Option<&str>, report: &RunReport) -> Json {
    Json::obj()
        .field("event", "done")
        .field("session", id)
        .field("status", status)
        .field("reason", reason.map(str::to_string))
        .field("system", report.system)
        .field("case", report.case)
        .field("steps", report.steps.len())
        .field("mean_quality", report.mean_quality())
        .field("total_evaluations", report.total_evaluations())
        .field("wall_ms", report.total_ms)
}

/// The canned request script of [`self_test`]: eight sessions (every
/// registered system × two replicates) multiplexed over one pool, plus a
/// deliberate unknown-system line, an unknown-case line and a
/// cancellation, so the error and cancel paths are exercised too.
pub fn self_test_script() -> String {
    [
        r#"{"op":"run","system":"ESS","case":"meadow_small","seed":11,"replicates":2,"scale":0.15}"#,
        r#"{"op":"run","system":"ESSIM-EA","case":"meadow_small","seed":12,"replicates":2,"scale":0.15,"max_steps":1}"#,
        r#"{"op":"run","system":"ESSIM-DE","case":"meadow_small","seed":13,"replicates":2,"scale":0.15,"max_steps":1}"#,
        r#"{"op":"run","system":"ESS-NS","case":"meadow_small","seed":14,"replicates":2,"scale":0.15}"#,
        r#"{"op":"run","system":"ESS-9000","case":"meadow_small"}"#,
        r#"{"op":"run","system":"ESS","case":"lost_valley"}"#,
        r#"{"op":"cancel","session":8}"#,
        r#"{"op":"drain"}"#,
        r#"{"op":"quit"}"#,
        "",
    ]
    .join("\n")
}

/// Runs [`self_test_script`] through the serve loop on `backend`, writing
/// the protocol output to `out`, and checks the summary against the
/// script's known shape. The CI smoke job runs this via
/// `harness serve --self-test`.
///
/// # Errors
/// A one-line description of the first mismatch (or transport failure).
pub fn self_test<W: Write>(out: W, backend: EvalBackend) -> Result<ServeSummary, String> {
    let script = self_test_script();
    let summary = serve(script.as_bytes(), out, backend).map_err(|e| format!("serve I/O: {e}"))?;
    let expect = |label: &str, got: usize, want: usize| {
        if got == want {
            Ok(())
        } else {
            Err(format!("self-test: expected {want} {label}, got {got}"))
        }
    };
    expect("accepted sessions", summary.accepted, 8)?;
    expect("error events", summary.errors, 2)?;
    expect("cancelled sessions", summary.cancelled, 1)?;
    expect("exhausted sessions", summary.exhausted, 4)?;
    expect("finished sessions", summary.finished, 3)?;
    Ok(summary)
}

fn emit<W: Write>(out: &mut W, event: Json) -> io::Result<()> {
    writeln!(out, "{event}")
}

fn emit_error<W: Write>(out: &mut W, summary: &mut ServeSummary, message: &str) -> io::Result<()> {
    summary.errors += 1;
    emit(
        out,
        Json::obj()
            .field("event", "error")
            .field("message", message),
    )
}
