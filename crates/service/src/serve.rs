//! The line-delimited JSON serve loop: protocol v1 and v2 over one
//! transport.
//!
//! One request per input line, one or more JSON objects per line of
//! output — dependency-free, so `harness serve` can speak it over
//! stdin/stdout and tests can drive it through in-memory buffers.
//!
//! **Version sniff:** a line whose object carries `"v":2` is a protocol-v2
//! request ([`crate::proto`] — typed envelopes, streaming progress frames,
//! checkpoint/resume); a line with an `"op"` member is a v1 request (the
//! PR 3 dialect, served unchanged so old clients and the `--self-test`
//! script keep working). Events for v1-submitted sessions stay in the v1
//! dialect; v2-submitted sessions get v2 frames — the two dialects share
//! the scheduler but never mix shapes for one session.
//!
//! v1 requests (`op` selects):
//!
//! ```text
//! {"op":"run","system":"ESS-NS","case":"meadow_small","seed":7,
//!  "replicates":2,"scale":0.25,"max_steps":3,"max_evaluations":9000,
//!  "deadline_ms":60000}                  → {"event":"accepted","session":N} per replicate
//! {"op":"cancel","session":2}            → {"event":"cancelled","session":2}
//! {"op":"drain"}                         → step/done events, then {"event":"drained",...}
//! {"op":"quit"}                          → {"event":"bye"} and the loop ends
//! ```
//!
//! v2 requests are documented in [`crate::proto`]; the headline additions
//! are `advance` (run a bounded number of scheduler rounds, so clients can
//! interleave control with execution), `snapshot`/`restore`
//! (checkpoint/resume via [`crate::SessionSnapshot`]), and per-session
//! `progress` streaming for sessions submitted with `"watch":true`.
//!
//! Execution always happens on the **server's** shared pool (every session
//! of every client multiplexes one worker pool — that is the point of the
//! serving layer), so a v1 request carrying a `backend` field is rejected
//! and a v2 spec's `backend` member is ignored. The scheduling discipline
//! is chosen per serve invocation ([`PolicyKind`], the harness `--policy`
//! flag). End of input implies `drain` (pending sessions still run) and
//! then `quit`, so piping a canned request file works without a trailing
//! quit line. Malformed lines produce an error event/frame and the loop
//! continues — one bad request must not take down a server multiplexing
//! other clients' sessions.

use crate::jsonio::Json;
use crate::policy::PolicyKind;
use crate::proto::{DoneFrame, Frame, Reply, Request, RequestKind};
use crate::scheduler::{Scheduler, SessionId, SessionOutcome};
use crate::session::SessionEvent;
use crate::spec::RunSpec;
use ess::error::BudgetReason;
use ess::fitness::EvalBackend;
use ess::pipeline::RunReport;
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, Write};

/// Counters the serve loop reports when it exits (the `--self-test`
/// assertions run against these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Sessions accepted (v1 + v2, including restored ones).
    pub accepted: usize,
    /// Sessions that ran every step.
    pub finished: usize,
    /// Sessions stopped by a budget.
    pub exhausted: usize,
    /// Sessions cancelled by request.
    pub cancelled: usize,
    /// Request lines answered with an error event/frame.
    pub errors: usize,
    /// Snapshots handed out (v2).
    pub snapshots: usize,
    /// Sessions restored from a snapshot (v2).
    pub restored: usize,
}

/// Per-connection v2 bookkeeping: which sessions speak v2, which of those
/// stream progress, and their cumulative (evaluations, best fitness)
/// counters for the progress frames.
#[derive(Default)]
struct V2State {
    sessions: HashSet<SessionId>,
    watched: HashSet<SessionId>,
    totals: HashMap<SessionId, (u64, f64)>,
}

impl V2State {
    fn admit(&mut self, id: SessionId, watch: bool, evaluations: u64, best: f64) {
        self.sessions.insert(id);
        if watch {
            self.watched.insert(id);
        }
        self.totals.insert(id, (evaluations, best));
    }

    fn retire(&mut self, id: SessionId) {
        self.sessions.remove(&id);
        self.watched.remove(&id);
        self.totals.remove(&id);
    }
}

/// Runs the serve loop with the default round-robin policy: reads
/// requests from `input` until `quit` or end of input, writes event lines
/// to `out`, executes every session on one shared pool built from
/// `backend`.
///
/// # Errors
/// Propagates I/O errors from the transport; protocol-level problems are
/// reported in-band as error events/frames.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    out: W,
    backend: EvalBackend,
) -> io::Result<ServeSummary> {
    serve_with(input, out, backend, PolicyKind::RoundRobin)
}

/// [`serve`] with an explicit scheduling policy — the `harness serve
/// --policy` entry point.
///
/// # Errors
/// Propagates I/O errors from the transport; protocol-level problems are
/// reported in-band as error events/frames.
pub fn serve_with<R: BufRead, W: Write>(
    input: R,
    out: W,
    backend: EvalBackend,
    policy: PolicyKind,
) -> io::Result<ServeSummary> {
    serve_configured(input, out, backend, policy, false)
}

/// [`serve_with`] plus the fusion switch: with `fused` on, every
/// scheduler round runs its planned sessions' steps concurrently and
/// fuses their evaluation batches into one shared-pool mega-batch per
/// wave ([`Scheduler::set_fused`]) — the protocol stream is identical,
/// event for event, because fused rounds are bit-identical to unfused
/// ones. The `harness serve --fused` entry point.
///
/// # Errors
/// Propagates I/O errors from the transport; protocol-level problems are
/// reported in-band as error events/frames.
pub fn serve_configured<R: BufRead, W: Write>(
    input: R,
    mut out: W,
    backend: EvalBackend,
    policy: PolicyKind,
    fused: bool,
) -> io::Result<ServeSummary> {
    let mut scheduler = Scheduler::with_policy(backend, policy);
    scheduler.set_fused(fused);
    let mut summary = ServeSummary::default();
    let mut v2 = V2State::default();
    let (mut saw_v1, mut saw_v2) = (false, false);

    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        // Errors on lines that name no dialect (unparseable bytes, objects
        // with neither "v" nor "op") answer in whichever dialect the
        // connection has spoken — v2 frames on a pure-v2 connection, the
        // legacy v1 event otherwise — and never flip the dialect flags.
        let v2_only = |saw_v1: bool, saw_v2: bool| saw_v2 && !saw_v1;
        let request = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                if v2_only(saw_v1, saw_v2) {
                    emit_v2_error(&mut out, &mut summary, 0, &e.to_string())?;
                } else {
                    emit_error(&mut out, &mut summary, &e.to_string())?;
                }
                continue;
            }
        };
        if request.get("v").is_some() {
            // Protocol v2: typed envelopes.
            saw_v2 = true;
            let id = request.get("id").and_then(Json::as_u64).unwrap_or(0);
            match Request::from_json(&request) {
                Ok(req) => {
                    if handle_v2(&mut scheduler, &mut out, &mut summary, &mut v2, req)? {
                        return Ok(summary);
                    }
                }
                Err(reason) => emit_v2_error(&mut out, &mut summary, id, &reason)?,
            }
            continue;
        }
        if request.get("op").is_none() {
            // Neither dialect's envelope: report it without treating the
            // connection as having spoken v1.
            let message = "request needs an 'op' field (v1) or '\"v\":2' (v2)";
            if v2_only(saw_v1, saw_v2) {
                emit_v2_error(&mut out, &mut summary, 0, message)?;
            } else {
                emit_error(&mut out, &mut summary, message)?;
            }
            continue;
        }
        saw_v1 = true;
        match request.get("op").and_then(Json::as_str) {
            Some("run") => match spec_from_request(&request) {
                Ok(spec) => match scheduler.submit(&spec) {
                    Ok(ids) => {
                        for id in ids {
                            summary.accepted += 1;
                            emit(
                                &mut out,
                                Json::obj()
                                    .field("event", "accepted")
                                    .field("session", id)
                                    .field("system", spec.system_name())
                                    .field("case", spec.case_name()),
                            )?;
                        }
                    }
                    Err(e) => emit_error(&mut out, &mut summary, &e.to_string())?,
                },
                Err(reason) => emit_error(&mut out, &mut summary, &reason)?,
            },
            Some("cancel") => match request.get("session").and_then(Json::as_u64) {
                Some(id) if scheduler.cancel(id) => {
                    summary.cancelled += 1;
                    // The session may have been submitted under v2 on this
                    // same connection: drop its streaming state either way.
                    v2.retire(id);
                    emit(
                        &mut out,
                        Json::obj().field("event", "cancelled").field("session", id),
                    )?;
                }
                Some(id) => emit_error(
                    &mut out,
                    &mut summary,
                    &format!("no live session {id} to cancel"),
                )?,
                None => emit_error(&mut out, &mut summary, "cancel needs a session id")?,
            },
            Some("drain") => {
                let (_, drained) =
                    run_rounds(&mut scheduler, &mut out, &mut summary, &mut v2, None)?;
                emit(
                    &mut out,
                    Json::obj()
                        .field("event", "drained")
                        .field("sessions", drained),
                )?;
            }
            Some("quit") => {
                emit(&mut out, Json::obj().field("event", "bye"))?;
                return Ok(summary);
            }
            Some(other) => emit_error(&mut out, &mut summary, &format!("unknown op '{other}'"))?,
            None => emit_error(&mut out, &mut summary, "'op' must be a string")?,
        }
    }
    // End of input: run whatever is still pending, then leave. On a
    // connection that only ever spoke v2, the implied drain/quit answer
    // in v2 frames too (correlation id 0 — there was no request line);
    // any v1 traffic keeps the legacy v1 shapes so old pipelines and
    // greps are undisturbed.
    let (_, drained) = run_rounds(&mut scheduler, &mut out, &mut summary, &mut v2, None)?;
    if saw_v2 && !saw_v1 {
        reply(&mut out, 0, Reply::Drained { sessions: drained })?;
        reply(&mut out, 0, Reply::Bye)?;
    } else {
        emit(
            &mut out,
            Json::obj()
                .field("event", "drained")
                .field("sessions", drained),
        )?;
        emit(&mut out, Json::obj().field("event", "bye"))?;
    }
    Ok(summary)
}

/// Handles one v2 request; returns `true` when the loop should end.
fn handle_v2<W: Write>(
    scheduler: &mut Scheduler,
    out: &mut W,
    summary: &mut ServeSummary,
    v2: &mut V2State,
    req: Request,
) -> io::Result<bool> {
    let id = req.id;
    match req.kind {
        RequestKind::Run { spec, watch } => {
            // The spec's `backend` member is ignored here: sessions share
            // the server's pool. (v1 rejects the field instead; v2 keeps
            // it because snapshots legitimately carry it.)
            match scheduler.submit(&spec) {
                Ok(ids) => {
                    summary.accepted += ids.len();
                    for &sid in &ids {
                        v2.admit(sid, watch, 0, f64::NEG_INFINITY);
                    }
                    reply(out, id, Reply::Accepted { sessions: ids })?;
                }
                Err(e) => emit_v2_error(out, summary, id, &e.to_string())?,
            }
        }
        RequestKind::Restore { snapshot, watch } => match snapshot.restore_on(scheduler.pool()) {
            Ok(session) => {
                let evaluations = session.evaluations_spent();
                let best = session
                    .steps()
                    .iter()
                    .map(|s| s.os_best_fitness)
                    .fold(f64::NEG_INFINITY, f64::max);
                let sid = scheduler.submit_session(session);
                summary.accepted += 1;
                summary.restored += 1;
                v2.admit(sid, watch, evaluations, best);
                reply(
                    out,
                    id,
                    Reply::Accepted {
                        sessions: vec![sid],
                    },
                )?;
            }
            Err(e) => emit_v2_error(out, summary, id, &e.to_string())?,
        },
        RequestKind::Advance { rounds } => {
            let (ran, _) = run_rounds(scheduler, out, summary, v2, Some(rounds))?;
            reply(
                out,
                id,
                Reply::Advanced {
                    rounds: ran,
                    live: scheduler.live_count(),
                },
            )?;
        }
        RequestKind::Snapshot { session } => {
            match scheduler.live().find(|(sid, _)| *sid == session) {
                Some((_, live)) => match live.snapshot() {
                    Ok(snapshot) => {
                        summary.snapshots += 1;
                        reply(
                            out,
                            id,
                            Reply::Snapshot {
                                session,
                                snapshot: Box::new(snapshot),
                            },
                        )?;
                    }
                    Err(e) => emit_v2_error(out, summary, id, &e.to_string())?,
                },
                None => emit_v2_error(
                    out,
                    summary,
                    id,
                    &format!("no live session {session} to snapshot"),
                )?,
            }
        }
        RequestKind::Cancel { session } => {
            if scheduler.cancel(session) {
                summary.cancelled += 1;
                v2.retire(session);
                reply(out, id, Reply::Cancelled { session })?;
            } else {
                emit_v2_error(
                    out,
                    summary,
                    id,
                    &format!("no live session {session} to cancel"),
                )?;
            }
        }
        RequestKind::Drain => {
            let (_, drained) = run_rounds(scheduler, out, summary, v2, None)?;
            reply(out, id, Reply::Drained { sessions: drained })?;
        }
        RequestKind::Quit => {
            reply(out, id, Reply::Bye)?;
            return Ok(true);
        }
    }
    Ok(false)
}

/// Runs scheduler rounds (all of them, or at most `max_rounds`),
/// streaming every event in its session's dialect, and folds the newly
/// completed outcomes into the summary. Returns (rounds run, sessions
/// that reached a terminal event).
fn run_rounds<W: Write>(
    scheduler: &mut Scheduler,
    out: &mut W,
    summary: &mut ServeSummary,
    v2: &mut V2State,
    max_rounds: Option<usize>,
) -> io::Result<(usize, usize)> {
    let before = scheduler.outcomes().len();
    let mut rounds = 0usize;
    while scheduler.live_count() > 0 && max_rounds.is_none_or(|m| rounds < m) {
        let events = scheduler.round();
        rounds += 1;
        for (id, event) in events {
            emit_session_event(out, v2, id, &event)?;
        }
    }
    for (_, outcome) in scheduler.outcomes().get(before..).unwrap_or_default() {
        match outcome {
            SessionOutcome::Finished(_) => summary.finished += 1,
            SessionOutcome::Exhausted { .. } => summary.exhausted += 1,
        }
    }
    let drained = scheduler.outcomes().len() - before;
    // Release the retained reports: a server process drains many times,
    // and nothing reads an outcome after its `done` event went out.
    let _ = scheduler.take_outcomes();
    Ok((rounds, drained))
}

/// Streams one session event in the dialect the session was submitted
/// under.
fn emit_session_event<W: Write>(
    out: &mut W,
    v2: &mut V2State,
    id: SessionId,
    event: &SessionEvent,
) -> io::Result<()> {
    if !v2.sessions.contains(&id) {
        return emit_v1_event(out, id, event);
    }
    match event {
        SessionEvent::StepCompleted(step) => {
            let (evaluations, best) = {
                let t = v2.totals.entry(id).or_insert((0, f64::NEG_INFINITY));
                t.0 += step.evaluations;
                t.1 = t.1.max(step.os_best_fitness);
                *t
            };
            if v2.watched.contains(&id) {
                emit(
                    out,
                    Frame::Progress {
                        session: id,
                        step: step.step,
                        evaluations,
                        best,
                    }
                    .to_json(),
                )?;
            }
            Ok(())
        }
        SessionEvent::Finished(report) => {
            v2.retire(id);
            emit(out, done_frame(id, "finished", None, report).to_json())
        }
        SessionEvent::BudgetExhausted { reason, partial } => {
            v2.retire(id);
            let status = match reason {
                BudgetReason::Cancelled => "cancelled",
                _ => "exhausted",
            };
            emit(
                out,
                done_frame(id, status, Some(&reason.to_string()), partial).to_json(),
            )
        }
    }
}

/// One v1 event line per session event — the PR 3 shapes, unchanged.
fn emit_v1_event<W: Write>(out: &mut W, id: SessionId, event: &SessionEvent) -> io::Result<()> {
    match event {
        SessionEvent::StepCompleted(step) => emit(
            out,
            Json::obj()
                .field("event", "step")
                .field("session", id)
                .field("step", step.step)
                .field("quality", step.quality)
                .field("kign", step.kign)
                .field("evaluations", step.evaluations)
                .field("wall_ms", step.wall_ms),
        ),
        SessionEvent::Finished(report) => emit(out, done_event(id, "finished", None, report)),
        SessionEvent::BudgetExhausted { reason, partial } => emit(
            out,
            done_event(id, "exhausted", Some(&reason.to_string()), partial),
        ),
    }
}

/// Builds a [`RunSpec`] from a v1 `run` request object, preserving the
/// v1 dialect's error texts (clients have always seen "run needs …", not
/// the spec parser's "spec needs …").
fn spec_from_request(request: &Json) -> Result<RunSpec, String> {
    if request.get("backend").is_some() {
        return Err(
            "requests cannot pick a backend: sessions share the server's pool \
             (choose it with `harness serve --backend ...`)"
                .to_string(),
        );
    }
    RunSpec::from_json(request).map_err(|e| e.replace("spec needs", "run needs"))
}

/// The v2 terminal frame for one completed session.
fn done_frame(id: SessionId, status: &str, reason: Option<&str>, report: &RunReport) -> Frame {
    Frame::Done(DoneFrame {
        session: id,
        status: status.to_string(),
        reason: reason.map(str::to_string),
        system: report.system.to_string(),
        case: report.case.to_string(),
        steps: report.steps.len(),
        mean_quality: report.mean_quality(),
        total_evaluations: report.total_evaluations(),
        wall_ms: report.total_ms,
    })
}

/// One v1 `done` line per completed session.
fn done_event(id: u64, status: &str, reason: Option<&str>, report: &RunReport) -> Json {
    Json::obj()
        .field("event", "done")
        .field("session", id)
        .field("status", status)
        .field("reason", reason.map(str::to_string))
        .field("system", report.system)
        .field("case", report.case)
        .field("steps", report.steps.len())
        .field("mean_quality", report.mean_quality())
        .field("total_evaluations", report.total_evaluations())
        .field("wall_ms", report.total_ms)
}

/// The canned request script of [`self_test`]: eight sessions (every
/// registered system × two replicates) multiplexed over one pool, plus a
/// deliberate unknown-system line, an unknown-case line and a
/// cancellation, so the error and cancel paths are exercised too.
pub fn self_test_script() -> String {
    [
        r#"{"op":"run","system":"ESS","case":"meadow_small","seed":11,"replicates":2,"scale":0.15}"#,
        r#"{"op":"run","system":"ESSIM-EA","case":"meadow_small","seed":12,"replicates":2,"scale":0.15,"max_steps":1}"#,
        r#"{"op":"run","system":"ESSIM-DE","case":"meadow_small","seed":13,"replicates":2,"scale":0.15,"max_steps":1}"#,
        r#"{"op":"run","system":"ESS-NS","case":"meadow_small","seed":14,"replicates":2,"scale":0.15}"#,
        r#"{"op":"run","system":"ESS-9000","case":"meadow_small"}"#,
        r#"{"op":"run","system":"ESS","case":"lost_valley"}"#,
        r#"{"op":"cancel","session":8}"#,
        r#"{"op":"drain"}"#,
        r#"{"op":"quit"}"#,
        "",
    ]
    .join("\n")
}

/// Runs [`self_test_script`] through the serve loop on `backend`, writing
/// the protocol output to `out`, and checks the summary against the
/// script's known shape. The CI smoke job runs this via
/// `harness serve --self-test`.
///
/// # Errors
/// A one-line description of the first mismatch (or transport failure).
pub fn self_test<W: Write>(out: W, backend: EvalBackend) -> Result<ServeSummary, String> {
    let script = self_test_script();
    let summary = serve(script.as_bytes(), out, backend).map_err(|e| format!("serve I/O: {e}"))?;
    let expect = |label: &str, got: usize, want: usize| {
        if got == want {
            Ok(())
        } else {
            Err(format!("self-test: expected {want} {label}, got {got}"))
        }
    };
    expect("accepted sessions", summary.accepted, 8)?;
    expect("error events", summary.errors, 2)?;
    expect("cancelled sessions", summary.cancelled, 1)?;
    expect("exhausted sessions", summary.exhausted, 4)?;
    expect("finished sessions", summary.finished, 3)?;
    Ok(summary)
}

fn emit<W: Write>(out: &mut W, event: Json) -> io::Result<()> {
    writeln!(out, "{event}")
}

fn emit_error<W: Write>(out: &mut W, summary: &mut ServeSummary, message: &str) -> io::Result<()> {
    summary.errors += 1;
    emit(
        out,
        Json::obj()
            .field("event", "error")
            .field("message", message),
    )
}

fn reply<W: Write>(out: &mut W, id: u64, reply: Reply) -> io::Result<()> {
    emit(out, Frame::Reply { id, reply }.to_json())
}

fn emit_v2_error<W: Write>(
    out: &mut W,
    summary: &mut ServeSummary,
    id: u64,
    message: &str,
) -> io::Result<()> {
    summary.errors += 1;
    reply(
        out,
        id,
        Reply::Error {
            message: message.to_string(),
        },
    )
}
