//! Property-based tests for the fire spread model and the propagation
//! engine: physical invariants that must hold for *every* scenario.

use firelib::sim::centre_ignition;
use firelib::{FireSim, MoistureRegime, Scenario, ScenarioSpace, SpreadInputs, Terrain};
use landscape::UNIGNITED;
use proptest::prelude::*;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    proptest::collection::vec(0.0f64..=1.0, firelib::GENE_COUNT)
        .prop_map(|g| ScenarioSpace.decode(&g))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any gene vector decodes to an in-range scenario (decode is total).
    #[test]
    fn decode_is_total(genes in proptest::collection::vec(-10.0f64..10.0, firelib::GENE_COUNT)) {
        let s = ScenarioSpace.decode(&genes);
        prop_assert!(s.is_valid());
    }

    /// Encode/decode round-trips the fuel model and keeps genes in [0,1].
    #[test]
    fn encode_in_unit_cube(s in arb_scenario()) {
        let genes = ScenarioSpace.encode(&s);
        for g in genes {
            prop_assert!((0.0..=1.0).contains(&g));
        }
        prop_assert_eq!(ScenarioSpace.decode(&genes).model, s.model);
    }

    /// The spread ellipse never spreads faster than its head rate in any
    /// direction, and never negatively.
    #[test]
    fn directional_ros_bounded(s in arb_scenario(), az in 0.0f64..360.0) {
        let bed = firelib::FuelBed::new(
            firelib::FuelCatalog::standard().model(s.model).unwrap(),
        );
        let v = firelib::spread::wind_slope_max(&bed, &s.moisture(), &s.spread_inputs());
        let r = v.ros_at_azimuth(az);
        prop_assert!(r >= 0.0);
        prop_assert!(r <= v.ros_max + 1e-9);
    }

    /// Eccentricity stays in [0, 1) for all scenarios.
    #[test]
    fn eccentricity_in_range(s in arb_scenario()) {
        let bed = firelib::FuelBed::new(
            firelib::FuelCatalog::standard().model(s.model).unwrap(),
        );
        let v = firelib::spread::wind_slope_max(&bed, &s.moisture(), &s.spread_inputs());
        prop_assert!((0.0..1.0).contains(&v.eccentricity));
    }

    /// More moisture never accelerates the no-wind spread rate.
    #[test]
    fn moisture_monotonicity(
        model in 1u8..=13,
        m_lo in 1.0f64..30.0,
        bump in 0.0f64..25.0,
    ) {
        let bed = firelib::FuelBed::new(
            firelib::FuelCatalog::standard().model(model).unwrap(),
        );
        let wet = |m: f64| MoistureRegime::from_percent(m, m, m, 150.0, 150.0);
        let lo = firelib::spread::no_wind_no_slope(&bed, &wet(m_lo)).0;
        let hi = firelib::spread::no_wind_no_slope(&bed, &wet(m_lo + bump)).0;
        prop_assert!(hi <= lo + 1e-9, "ros({}) = {lo} < ros({}) = {hi}", m_lo, m_lo + bump);
    }

    /// Stronger wind never slows the head fire.
    #[test]
    fn wind_monotonicity(model in 1u8..=13, w_lo in 0.0f64..40.0, bump in 0.0f64..40.0) {
        let bed = firelib::FuelBed::new(
            firelib::FuelCatalog::standard().model(model).unwrap(),
        );
        let m = MoistureRegime::moderate();
        let at = |mph: f64| firelib::spread::wind_slope_max(
            &bed,
            &m,
            &SpreadInputs { wind_fpm: mph * firelib::MPH_TO_FPM, wind_azimuth: 0.0, ..SpreadInputs::calm() },
        ).ros_max;
        prop_assert!(at(w_lo + bump) >= at(w_lo) - 1e-9);
    }

    /// Simulated ignition times respect the time horizon, include the
    /// ignition instant, and grow outward (every burned cell is reachable
    /// at a time no earlier than its neighbours' minimum plus a positive
    /// traversal).
    #[test]
    fn simulation_respects_horizon(s in arb_scenario(), dur in 10.0f64..500.0) {
        let sim = FireSim::new(Terrain::uniform(17, 17, 100.0));
        let map = sim.simulate(&s, &centre_ignition(17, 17), 0.0, dur);
        for ((r, c), &t) in map.grid().iter_cells() {
            if t == UNIGNITED {
                continue;
            }
            prop_assert!(t >= 0.0 && t <= dur + 1e-9, "cell ({r},{c}) at {t} breaks horizon {dur}");
        }
        prop_assert!(map.time(8, 8) == 0.0 || map.burned_count_at(dur) == 0);
    }

    /// Burned area is monotone in the horizon for a fixed scenario.
    #[test]
    fn burned_area_monotone_in_duration(s in arb_scenario(), d1 in 10.0f64..200.0, extra in 0.0f64..300.0) {
        let sim = FireSim::new(Terrain::uniform(15, 15, 100.0));
        let a1 = sim
            .simulate(&s, &centre_ignition(15, 15), 0.0, d1)
            .burned_count_at(d1);
        let a2 = sim
            .simulate(&s, &centre_ignition(15, 15), 0.0, d1 + extra + 1.0)
            .burned_count_at(d1 + extra + 1.0);
        prop_assert!(a2 >= a1);
    }

    /// Every ignited cell (except the seeds) has an already-ignited
    /// neighbour with an earlier time: fire does not teleport.
    #[test]
    fn no_teleportation(s in arb_scenario()) {
        let sim = FireSim::new(Terrain::uniform(13, 13, 100.0));
        let map = sim.simulate(&s, &centre_ignition(13, 13), 0.0, 400.0);
        for ((r, c), &t) in map.grid().iter_cells() {
            if t == UNIGNITED || t == 0.0 {
                continue;
            }
            let has_earlier_neighbour = map
                .grid()
                .neighbours8(r, c)
                .any(|(nr, nc, _)| map.time(nr, nc) < t);
            prop_assert!(has_earlier_neighbour, "cell ({r},{c}) ignited at {t} with no earlier neighbour");
        }
    }
}
