//! Property-style tests for the fire spread model and the propagation
//! engine: physical invariants that must hold for *every* scenario,
//! checked over deterministic seeded streams of random scenarios.

use firelib::sim::centre_ignition;
use firelib::{FireSim, MoistureRegime, Scenario, ScenarioSpace, SpreadInputs, Terrain};
use landscape::UNIGNITED;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn scenario(rng: &mut StdRng) -> Scenario {
    let genes: Vec<f64> = (0..firelib::GENE_COUNT)
        .map(|_| rng.random::<f64>())
        .collect();
    ScenarioSpace.decode(&genes)
}

/// Any gene vector decodes to an in-range scenario (decode is total).
#[test]
fn decode_is_total() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let genes: Vec<f64> = (0..firelib::GENE_COUNT)
            .map(|_| -10.0 + rng.random::<f64>() * 20.0)
            .collect();
        let s = ScenarioSpace.decode(&genes);
        assert!(s.is_valid(), "genes {genes:?} decoded to invalid scenario");
    }
}

/// Encode/decode round-trips the fuel model and keeps genes in [0,1].
#[test]
fn encode_in_unit_cube() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scenario(&mut rng);
        let genes = ScenarioSpace.encode(&s);
        for g in genes {
            assert!((0.0..=1.0).contains(&g));
        }
        assert_eq!(ScenarioSpace.decode(&genes).model, s.model);
    }
}

/// The spread ellipse never spreads faster than its head rate in any
/// direction, and never negatively.
#[test]
fn directional_ros_bounded() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scenario(&mut rng);
        let az = rng.random::<f64>() * 360.0;
        let bed = firelib::FuelBed::new(firelib::FuelCatalog::standard().model(s.model).unwrap());
        let v = firelib::spread::wind_slope_max(&bed, &s.moisture(), &s.spread_inputs());
        let r = v.ros_at_azimuth(az);
        assert!(r >= 0.0);
        assert!(r <= v.ros_max + 1e-9);
    }
}

/// Eccentricity stays in [0, 1) for all scenarios.
#[test]
fn eccentricity_in_range() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scenario(&mut rng);
        let bed = firelib::FuelBed::new(firelib::FuelCatalog::standard().model(s.model).unwrap());
        let v = firelib::spread::wind_slope_max(&bed, &s.moisture(), &s.spread_inputs());
        assert!((0.0..1.0).contains(&v.eccentricity));
    }
}

/// More moisture never accelerates the no-wind spread rate.
#[test]
fn moisture_monotonicity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = rng.random_range(1..14u32) as u8;
        let m_lo = 1.0 + rng.random::<f64>() * 29.0;
        let bump = rng.random::<f64>() * 25.0;
        let bed = firelib::FuelBed::new(firelib::FuelCatalog::standard().model(model).unwrap());
        let wet = |m: f64| MoistureRegime::from_percent(m, m, m, 150.0, 150.0);
        let lo = firelib::spread::no_wind_no_slope(&bed, &wet(m_lo)).0;
        let hi = firelib::spread::no_wind_no_slope(&bed, &wet(m_lo + bump)).0;
        assert!(
            hi <= lo + 1e-9,
            "ros({}) = {lo} < ros({}) = {hi}",
            m_lo,
            m_lo + bump
        );
    }
}

/// Stronger wind never slows the head fire.
#[test]
fn wind_monotonicity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = rng.random_range(1..14u32) as u8;
        let w_lo = rng.random::<f64>() * 40.0;
        let bump = rng.random::<f64>() * 40.0;
        let bed = firelib::FuelBed::new(firelib::FuelCatalog::standard().model(model).unwrap());
        let m = MoistureRegime::moderate();
        let at = |mph: f64| {
            firelib::spread::wind_slope_max(
                &bed,
                &m,
                &SpreadInputs {
                    wind_fpm: mph * firelib::MPH_TO_FPM,
                    wind_azimuth: 0.0,
                    ..SpreadInputs::calm()
                },
            )
            .ros_max
        };
        assert!(at(w_lo + bump) >= at(w_lo) - 1e-9);
    }
}

/// Simulated ignition times respect the time horizon and include the
/// ignition instant.
#[test]
fn simulation_respects_horizon() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scenario(&mut rng);
        let dur = 10.0 + rng.random::<f64>() * 490.0;
        let sim = FireSim::new(Terrain::uniform(17, 17, 100.0));
        let map = sim.simulate(&s, &centre_ignition(17, 17), 0.0, dur);
        for ((r, c), &t) in map.grid().iter_cells() {
            if t == UNIGNITED {
                continue;
            }
            assert!(
                (0.0..=dur + 1e-9).contains(&t),
                "cell ({r},{c}) at {t} breaks horizon {dur}"
            );
        }
        assert!(map.time(8, 8) == 0.0 || map.burned_count_at(dur) == 0);
    }
}

/// Burned area is monotone in the horizon for a fixed scenario.
#[test]
fn burned_area_monotone_in_duration() {
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scenario(&mut rng);
        let d1 = 10.0 + rng.random::<f64>() * 190.0;
        let extra = rng.random::<f64>() * 300.0;
        let sim = FireSim::new(Terrain::uniform(15, 15, 100.0));
        let a1 = sim
            .simulate(&s, &centre_ignition(15, 15), 0.0, d1)
            .burned_count_at(d1);
        let a2 = sim
            .simulate(&s, &centre_ignition(15, 15), 0.0, d1 + extra + 1.0)
            .burned_count_at(d1 + extra + 1.0);
        assert!(a2 >= a1);
    }
}

/// Every ignited cell (except the seeds) has an already-ignited neighbour
/// with an earlier time: fire does not teleport.
#[test]
fn no_teleportation() {
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scenario(&mut rng);
        let sim = FireSim::new(Terrain::uniform(13, 13, 100.0));
        let map = sim.simulate(&s, &centre_ignition(13, 13), 0.0, 400.0);
        for ((r, c), &t) in map.grid().iter_cells() {
            if t == UNIGNITED || t == 0.0 {
                continue;
            }
            let has_earlier_neighbour = map
                .grid()
                .neighbours8(r, c)
                .any(|(nr, nc, _)| map.time(nr, nc) < t);
            assert!(
                has_earlier_neighbour,
                "cell ({r},{c}) ignited at {t} with no earlier neighbour"
            );
        }
    }
}

/// Every corpus workload is *valid*: the requested ignitions land in
/// bounds on burnable ground, a positive fraction of the landscape can
/// burn, and simulating the hidden truth produces a non-empty, growing
/// reference fire — so the full calibration → prediction pipeline can run
/// on every named workload.
#[test]
fn every_corpus_workload_is_valid() {
    use firelib::combustion::standard_beds;
    let beds = standard_beds();
    for spec in firelib::workload::corpus() {
        let w = spec.build();
        assert_eq!(
            (w.ignition.rows(), w.ignition.cols()),
            (w.terrain.rows(), w.terrain.cols()),
            "{}: ignition raster shape",
            spec.name
        );
        assert_eq!(
            w.ignition.burned_area(),
            spec.ignitions,
            "{}: ignition count",
            spec.name
        );
        for (r, c) in w.ignition.burned_cells() {
            let code = w.terrain.fuel_at(r, c, w.truth[0].model);
            assert!(
                beds[code as usize].burnable,
                "{}: ignition ({r},{c}) on unburnable fuel {code}",
                spec.name
            );
        }
        let frac = w.burnable_fraction();
        assert!(
            frac > 0.25,
            "{}: burnable fraction {frac} too low",
            spec.name
        );
        let sim = w.sim();
        let reference = w.reference_lines(&sim);
        assert_eq!(reference.len(), w.times.len(), "{}: line count", spec.name);
        for pair in reference.windows(2) {
            assert!(
                pair[0].is_subset_of(&pair[1]),
                "{}: reference fire regressed",
                spec.name
            );
        }
        let final_area = reference.last().unwrap().burned_area();
        assert!(
            final_area > w.ignition.burned_area(),
            "{}: reference fire never grew ({} cells)",
            spec.name,
            final_area
        );
    }
}

/// `simulate`, `simulate_into` and `simulate_arena` are bit-identical on a
/// heterogeneous workload (fuel mosaic + gusty wind → the per-cell spread
/// path), across random scenarios and with the arena reused between them.
#[test]
fn simulate_variants_bit_identical_on_heterogeneous_workload() {
    use landscape::IgnitionMap;
    let w = firelib::workload::gusty_channel().shrunk(32).build();
    let sim = w.sim();
    let mut arena = sim.arena();
    let mut into_map = IgnitionMap::unignited(w.terrain.rows(), w.terrain.cols());
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = scenario(&mut rng);
        let fresh = sim.simulate(&s, &w.ignition, 0.0, 90.0);
        sim.simulate_into(&s, &w.ignition, 0.0, 90.0, &mut into_map);
        let via_arena = sim.simulate_arena(&s, &w.ignition, 0.0, 90.0, &mut arena);
        let bits = |m: &IgnitionMap| -> Vec<u64> {
            m.grid().as_slice().iter().map(|t| t.to_bits()).collect()
        };
        assert_eq!(bits(&fresh), bits(&into_map), "seed {seed}: into diverged");
        assert_eq!(bits(&fresh), bits(via_arena), "seed {seed}: arena diverged");
    }
}

/// The bucket-queue kernel is bit-for-bit identical to the reference
/// heap kernel on *every* landscape: random non-square terrains with fuel
/// mosaics, slopes, aspects and per-cell wind fields, random scenarios,
/// random durations and 1–4 scattered ignitions — with both arenas reused
/// across every case, so the dirty-span reset path is exercised between
/// landscapes of different shapes. This is the equivalence contract the
/// Dial-style wavefront sweep is pinned to (exact f64, no tolerance).
#[test]
fn bucket_kernel_bit_identical_on_random_landscapes() {
    use firelib::sim::Kernel;
    use landscape::{FireLine, Grid};
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0xD1A1 + seed);
        // Non-square on both orientations across the stream.
        let (rows, cols) = if seed % 2 == 0 {
            (11 + (seed as usize % 7), 19 + (seed as usize % 5))
        } else {
            (21 + (seed as usize % 5), 12 + (seed as usize % 7))
        };
        let fuel = Grid::from_fn(rows, cols, |_, _| rng.random_range(0..14u32) as u8);
        let slope = Grid::from_fn(rows, cols, |_, _| rng.random::<f64>() * 40.0);
        let aspect = Grid::from_fn(rows, cols, |_, _| rng.random::<f64>() * 360.0);
        let speed = Grid::from_fn(rows, cols, |_, _| 0.25 + rng.random::<f64>() * 1.75);
        let dir = Grid::from_fn(rows, cols, |_, _| (rng.random::<f64>() - 0.5) * 90.0);
        let terrain = Terrain::uniform(rows, cols, 60.0 + rng.random::<f64>() * 80.0)
            .with_fuel(fuel)
            .with_slope(slope)
            .with_aspect(aspect)
            .with_wind(speed, dir);
        let mut ignition = FireLine::empty(rows, cols);
        for _ in 0..rng.random_range(1..5u32) {
            ignition.set_burned(rng.random_range(0..rows), rng.random_range(0..cols), true);
        }
        let s = scenario(&mut rng);
        let duration = 20.0 + rng.random::<f64>() * 400.0;

        let sim = FireSim::new(terrain);
        let mut heap_arena = sim.arena();
        let mut bucket_arena = sim.arena();
        // Two back-to-back runs per kernel: the second starts from a dirty
        // arena, so any under-reset from the span bookkeeping shows up.
        for round in 0..2 {
            let reference = sim
                .simulate_arena_kernel(&s, &ignition, 0.0, duration, &mut heap_arena, Kernel::Heap)
                .clone();
            let bucket = sim.simulate_arena_kernel(
                &s,
                &ignition,
                0.0,
                duration,
                &mut bucket_arena,
                Kernel::Bucket,
            );
            let bits = |m: &landscape::IgnitionMap| -> Vec<u64> {
                m.grid().as_slice().iter().map(|t| t.to_bits()).collect()
            };
            assert_eq!(
                bits(&reference),
                bits(bucket),
                "seed {seed} round {round} ({rows}x{cols}): kernels diverged"
            );
        }
    }
}

/// The tiled parallel kernel is bit-for-bit identical to BOTH the
/// reference heap kernel and the bucket kernel on *every* landscape:
/// random non-square terrains with fuel mosaics, slopes, aspects and
/// per-cell wind fields, random scenarios and durations, 1–4 scattered
/// ignitions — swept across degenerate tile shapes (1-cell tiles, a tile
/// larger than the grid, non-divisible edges) and worker counts
/// {1, 2, 8}, with the tiled arena reused dirty across every case so the
/// span-reset path is exercised between landscapes of different shapes.
/// Exact f64 raster bits, no tolerance: the defer-all drain plus ordered
/// merge must realize the heap's pop sequence literally.
#[test]
fn tiled_kernel_bit_identical_on_random_landscapes() {
    use firelib::sim::Kernel;
    use landscape::{FireLine, Grid};
    let configs = [(1usize, 2usize), (3, 8), (5, 1), (13, 2), (1000, 8)];
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0x711E + seed);
        let (rows, cols) = if seed % 2 == 0 {
            (11 + (seed as usize % 7), 19 + (seed as usize % 5))
        } else {
            (21 + (seed as usize % 5), 12 + (seed as usize % 7))
        };
        let fuel = Grid::from_fn(rows, cols, |_, _| rng.random_range(0..14u32) as u8);
        let slope = Grid::from_fn(rows, cols, |_, _| rng.random::<f64>() * 40.0);
        let aspect = Grid::from_fn(rows, cols, |_, _| rng.random::<f64>() * 360.0);
        let speed = Grid::from_fn(rows, cols, |_, _| 0.25 + rng.random::<f64>() * 1.75);
        let dir = Grid::from_fn(rows, cols, |_, _| (rng.random::<f64>() - 0.5) * 90.0);
        let terrain = Terrain::uniform(rows, cols, 60.0 + rng.random::<f64>() * 80.0)
            .with_fuel(fuel)
            .with_slope(slope)
            .with_aspect(aspect)
            .with_wind(speed, dir);
        let mut ignition = FireLine::empty(rows, cols);
        for _ in 0..rng.random_range(1..5u32) {
            ignition.set_burned(rng.random_range(0..rows), rng.random_range(0..cols), true);
        }
        let s = scenario(&mut rng);
        let duration = 20.0 + rng.random::<f64>() * 400.0;
        let (tile, workers) = configs[seed as usize % configs.len()];

        let sim = FireSim::new(terrain);
        let mut heap_arena = sim.arena();
        let mut bucket_arena = sim.arena();
        let mut tiled_arena = sim.arena();
        // Two back-to-back runs per kernel: the second starts from a dirty
        // arena, so any under-reset from the span bookkeeping shows up.
        for round in 0..2 {
            let reference = sim
                .simulate_arena_kernel(&s, &ignition, 0.0, duration, &mut heap_arena, Kernel::Heap)
                .clone();
            let bucket = sim
                .simulate_arena_kernel(
                    &s,
                    &ignition,
                    0.0,
                    duration,
                    &mut bucket_arena,
                    Kernel::Bucket,
                )
                .clone();
            let tiled = sim.simulate_arena_kernel(
                &s,
                &ignition,
                0.0,
                duration,
                &mut tiled_arena,
                Kernel::Tiled { tile, workers },
            );
            let bits = |m: &landscape::IgnitionMap| -> Vec<u64> {
                m.grid().as_slice().iter().map(|t| t.to_bits()).collect()
            };
            assert_eq!(
                bits(&reference),
                bits(tiled),
                "seed {seed} round {round} ({rows}x{cols}, tile {tile}, workers {workers}): \
                 tiled diverged from heap"
            );
            assert_eq!(
                bits(&bucket),
                bits(tiled),
                "seed {seed} round {round} ({rows}x{cols}, tile {tile}, workers {workers}): \
                 tiled diverged from bucket"
            );
        }
    }
}

/// Multi-ignition fronts on non-square grids with a per-cell wind field:
/// every seeded front contributes (each seed cell is in the map at t0),
/// merged fronts still obey the adjacency invariant, and the wind layers
/// actually shear the spread (the `with_wind` layers are not dead weight).
#[test]
fn multi_ignition_with_wind_on_non_square_grids() {
    use landscape::{FireLine, Grid};
    for &(rows, cols) in &[(13usize, 29usize), (31usize, 12usize)] {
        let mut rng = StdRng::seed_from_u64(rows as u64 * 31 + cols as u64);
        // A strong asymmetric wind field: speed factor grows with the
        // column, direction offset fixed — enough to shear the ellipses.
        let speed = Grid::from_fn(rows, cols, |_, c| 0.5 + 2.0 * c as f64 / cols as f64);
        let dir = Grid::from_fn(rows, cols, |_, _| 30.0);
        let terrain = Terrain::uniform(rows, cols, 100.0).with_wind(speed, dir);
        let calm = Terrain::uniform(rows, cols, 100.0);

        let mut ignition = FireLine::empty(rows, cols);
        let seeds = [
            (rows / 4, cols / 4),
            (rows / 4, 3 * cols / 4),
            (3 * rows / 4, cols / 2),
        ];
        for &(r, c) in &seeds {
            ignition.set_burned(r, c, true);
        }
        let s = Scenario {
            wind_speed_mph: 9.0,
            wind_dir_deg: rng.random::<f64>() * 360.0,
            ..Scenario::reference()
        };
        let sim = FireSim::new(terrain);
        let map = sim.simulate(&s, &ignition, 0.0, 45.0);
        for &(r, c) in &seeds {
            assert_eq!(map.time(r, c), 0.0, "seed ({r},{c}) lost");
        }
        for ((r, c), &t) in map.grid().iter_cells() {
            if t == UNIGNITED || t == 0.0 {
                continue;
            }
            assert!(
                map.grid()
                    .neighbours8(r, c)
                    .any(|(nr, nc, _)| map.time(nr, nc) < t),
                "({r},{c}) ignited at {t} with no earlier neighbour"
            );
        }
        // The wind layers must change the outcome vs the calm terrain.
        let calm_map = FireSim::new(calm).simulate(&s, &ignition, 0.0, 45.0);
        assert_ne!(
            map.grid()
                .as_slice()
                .iter()
                .map(|t| t.to_bits())
                .collect::<Vec<_>>(),
            calm_map
                .grid()
                .as_slice()
                .iter()
                .map(|t| t.to_bits())
                .collect::<Vec<_>>(),
            "{rows}x{cols}: per-cell wind field had no effect"
        );
    }
}

/// The same, on a fuel-only mosaic — the per-fuel table-cache fast path
/// must be indistinguishable from the general path's results.
#[test]
fn fuel_cache_path_bit_identical() {
    let w = firelib::workload::patchwork_mosaic().shrunk(32).build();
    let sim = w.sim();
    assert!(
        sim.terrain().fuel_is_only_override(),
        "patchwork must take the per-fuel cache path"
    );
    let mut arena = sim.arena();
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let s = scenario(&mut rng);
        let fresh = sim.simulate(&s, &w.ignition, 0.0, 120.0);
        let via_arena = sim.simulate_arena(&s, &w.ignition, 0.0, 120.0, &mut arena);
        assert_eq!(&fresh, via_arena, "seed {seed}");
    }
}
