//! Regression pin: exact arrival times on a known heterogeneous terrain.
//!
//! The `SimArena` refactor rearranged every buffer in the propagation
//! engine while promising *bit-identical* output. This test freezes that
//! promise against a fixed landscape that exercises all override layers at
//! once — a fuel stripe pattern (including a firebreak), a slope gradient,
//! an aspect split and a wind modulation field — by pinning the `f64`
//! arrival times of a spread of probe cells to within a sliver of relative
//! error (the constants were generated on glibc; transcendental last bits
//! vary per libm). If any future change to the spread table caching, heap
//! handling or traversal order shifts an arrival time, this fails; the
//! structural bit-identity across simulate/simulate_into/simulate_arena is
//! pinned separately in `properties.rs`.
//!
//! The pinned constants were produced by this same terrain/scenario pair
//! at the time the arena refactor landed (they matched the pre-refactor
//! engine bit for bit; see `simulate_variants_bit_identical_*` in
//! `properties.rs` for the structural equivalence tests).

use firelib::{FireSim, Scenario, Terrain};
use landscape::{FireLine, Grid, UNIGNITED};

/// A 12×12 terrain exercising fuel, slope, aspect and wind layers at once.
fn pinned_terrain() -> Terrain {
    let n = 12usize;
    // Fuel: vertical stripes 1,2,4,10 with a firebreak column at 8.
    let fuel = Grid::from_fn(n, n, |_, c| match c {
        8 => 0u8,
        _ => [1u8, 2, 4, 10][c % 4],
    });
    // Slope rises linearly to the north; aspect flips by hemisphere.
    let slope = Grid::from_fn(n, n, |r, _| (22.0 - (r as f64) * 1.5).max(0.0));
    let aspect = Grid::from_fn(n, n, |_, c| if c < n / 2 { 135.0 } else { 315.0 });
    // Wind: speed doubles towards the east, direction veers linearly.
    let wind_factor = Grid::from_fn(n, n, |_, c| 0.6 + c as f64 * 0.1);
    let wind_veer = Grid::from_fn(n, n, |r, _| -20.0 + r as f64 * 4.0);
    Terrain::uniform(n, n, 100.0)
        .with_fuel(fuel)
        .with_slope(slope)
        .with_aspect(aspect)
        .with_wind(wind_factor, wind_veer)
}

fn pinned_scenario() -> Scenario {
    Scenario {
        model: 1, // shadowed by the fuel layer everywhere
        wind_speed_mph: 9.0,
        wind_dir_deg: 70.0,
        m1_pct: 5.0,
        m10_pct: 7.0,
        m100_pct: 9.0,
        mherb_pct: 95.0,
        slope_deg: 10.0, // shadowed by the slope layer
        aspect_deg: 0.0, // shadowed by the aspect layer
    }
}

/// Probe cells across the map and their exact expected arrival times
/// (minutes; `UNIGNITED` for cells the fire must never reach).
const PINNED: &[(usize, usize, f64)] = &[
    (6, 2, 0.0),
    (6, 3, 1.2000591775258833),
    (6, 5, 11.59068230150558),
    (6, 7, 13.767762512598637),
    (6, 9, UNIGNITED),
    (5, 2, 7.2401414787349685),
    (4, 2, 13.72949177461063),
    (2, 2, 24.498232742440234),
    (0, 2, 32.47758860272352),
    (8, 2, 26.02027696295653),
    (10, 2, 49.04182526750915),
    (11, 2, 59.45079633434922),
    (3, 5, 19.472626418754587),
    (9, 5, 27.28368139517143),
    (0, 0, 69.77080348228637),
    (11, 7, 38.98157722535638),
    (1, 7, 22.353095183747136),
];

#[test]
fn arrival_times_are_pinned() {
    let sim = FireSim::new(pinned_terrain());
    let ignition = FireLine::from_cells(12, 12, &[(6, 2)]);
    let mut arena = sim.arena();
    let map = sim.simulate_arena(&pinned_scenario(), &ignition, 0.0, 240.0, &mut arena);
    for &(r, c, expected) in PINNED {
        let got = map.time(r, c);
        // The constants were generated on glibc; arrival times flow through
        // tan/atan2 whose last bits vary across libm implementations, so the
        // pin tolerates a sliver of relative error instead of exact bits.
        let ok = if expected == UNIGNITED {
            got == UNIGNITED
        } else {
            (got - expected).abs() <= 1e-9 * expected.max(1.0)
        };
        assert!(ok, "cell ({r},{c}): expected {expected:?}, got {got:?}");
    }
}

/// The firebreak column and everything behind it stay untouched.
#[test]
fn firebreak_column_blocks_eastward_spread() {
    let sim = FireSim::new(pinned_terrain());
    let ignition = FireLine::from_cells(12, 12, &[(6, 2)]);
    let map = sim.simulate(&pinned_scenario(), &ignition, 0.0, 1e5);
    for r in 0..12 {
        assert_eq!(map.time(r, 8), UNIGNITED, "firebreak cell ({r},8) ignited");
        for c in 9..12 {
            assert_eq!(map.time(r, c), UNIGNITED, "({r},{c}) behind break ignited");
        }
    }
    assert!(
        map.burned_count_at(1e5) > 20,
        "fire must burn the west side"
    );
}
