//! The workload corpus: named, seeded, reproducible burn workloads.
//!
//! The paper's experiments run on one fixed burn case; a production
//! prediction engine must ingest *any* landscape. This module is the layer
//! that opens that door: a [`WorkloadSpec`] declares a landscape family
//! (fuel mosaic, relief, wind field), an ignition plan and a hidden truth,
//! and [`WorkloadSpec::build`] expands it — via the deterministic
//! generators in [`landscape::synth`] — into a concrete [`Workload`]:
//! terrain, ignition fire line, observation instants and per-interval truth
//! scenarios. Simulating the truth produces the synthetic "real fire"
//! reference maps, so every workload runs end-to-end through the full
//! calibration → prediction pipeline exactly like the hand-built cases.
//!
//! Everything is a pure function of the spec (including its `seed`), so a
//! named workload is bit-identical across machines and PRs — which is what
//! makes the per-workload benchmark JSON comparable over time.

use crate::combustion::standard_beds;
use crate::scenario::Scenario;
use crate::sim::FireSim;
use crate::terrain::Terrain;
use landscape::{synth, FireLine, Grid};
use std::sync::Arc;

/// How fuel is laid over the raster.
#[derive(Debug, Clone, PartialEq)]
pub enum FuelPattern {
    /// No override layer: every cell takes the fuel model of the scenario
    /// under evaluation (the paper's original setting).
    FromScenario,
    /// One fixed fuel model everywhere.
    Uniform(u8),
    /// A Voronoi patch mosaic cycling through `codes` (`0` patches act as
    /// firebreaks — lakes, rock, roads).
    Mosaic { sites: usize, codes: Vec<u8> },
}

/// Terrain relief.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Relief {
    /// Flat ground (slope/aspect come from the scenario).
    Flat,
    /// Fractal hills: a noise elevation field of the given amplitude (ft)
    /// and feature size (cells), converted to per-cell slope/aspect layers.
    Hills {
        /// Peak-to-valley elevation range, in feet.
        amplitude_ft: f64,
        /// Feature size of the base noise octave, in cells.
        feature_cells: f64,
    },
}

/// Near-surface wind structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindField {
    /// The scenario's global wind everywhere.
    FromScenario,
    /// Terrain-modulated wind: the scenario's speed is multiplied by a
    /// smooth factor field in `[min_factor, max_factor]` and its direction
    /// veered by up to `±veer_deg`.
    Gusty {
        /// Smallest local speed multiplier.
        min_factor: f64,
        /// Largest local speed multiplier.
        max_factor: f64,
        /// Maximum local direction offset (degrees, either sign).
        veer_deg: f64,
        /// Feature size of the gust field, in cells.
        feature_cells: f64,
    },
}

/// How the hidden truth evolves over the burn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TruthDrift {
    /// The same scenario generated every interval.
    Static(Scenario),
    /// Wind veers and strengthens step by step (the paper's §IV stress).
    VeeringWind {
        /// Truth of the first interval.
        base: Scenario,
        /// Direction change per step (degrees).
        deg_per_step: f64,
        /// Speed change per step (mph).
        mph_per_step: f64,
    },
}

impl TruthDrift {
    /// The truth scenario of interval `step`.
    pub fn at(&self, step: usize) -> Scenario {
        match *self {
            TruthDrift::Static(s) => s,
            TruthDrift::VeeringWind {
                base,
                deg_per_step,
                mph_per_step,
            } => Scenario {
                wind_dir_deg: landscape::geometry::normalize_azimuth(
                    base.wind_dir_deg + deg_per_step * step as f64,
                ),
                wind_speed_mph: (base.wind_speed_mph + mph_per_step * step as f64).clamp(0.0, 80.0),
                ..base
            },
        }
    }
}

/// A declarative, seeded description of one workload. Expanding it with
/// [`WorkloadSpec::build`] is deterministic: same spec, same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Corpus key (report/JSON identifier).
    pub name: &'static str,
    /// Human description.
    pub description: &'static str,
    /// Raster rows.
    pub rows: usize,
    /// Raster columns.
    pub cols: usize,
    /// Cell side length (ft).
    pub cell_ft: f64,
    /// Master seed for every procedural layer.
    pub seed: u64,
    /// Fuel layout.
    pub fuel: FuelPattern,
    /// Relief layout.
    pub relief: Relief,
    /// Wind structure.
    pub wind: WindField,
    /// Number of ignition points.
    pub ignitions: usize,
    /// Number of observed intervals (instants = `steps + 1`; the pipeline
    /// needs at least 2 intervals).
    pub steps: usize,
    /// Interval length (minutes).
    pub step_minutes: f64,
    /// Hidden truth model.
    pub truth: TruthDrift,
}

impl WorkloadSpec {
    /// Expands the spec into a concrete workload (terrain + ignition +
    /// schedule + truth).
    ///
    /// # Panics
    /// Panics when the spec is degenerate (fewer than 2 steps, zero
    /// ignitions, or a mosaic without burnable codes).
    pub fn build(&self) -> Workload {
        assert!(self.steps >= 2, "a workload needs at least 2 intervals");
        assert!(self.ignitions > 0, "a workload needs at least one ignition");
        assert!(
            self.step_minutes.is_finite() && self.step_minutes > 0.0,
            "interval length must be positive"
        );

        let mut terrain = Terrain::uniform(self.rows, self.cols, self.cell_ft);
        match &self.fuel {
            FuelPattern::FromScenario => {}
            FuelPattern::Uniform(code) => {
                terrain = terrain.with_fuel(Grid::filled(self.rows, self.cols, *code));
            }
            FuelPattern::Mosaic { sites, codes } => {
                assert!(
                    codes.iter().any(|&c| c != 0),
                    "mosaic needs at least one burnable code"
                );
                terrain = terrain.with_fuel(synth::voronoi_mosaic(
                    self.rows, self.cols, *sites, codes, self.seed,
                ));
            }
        }
        if let Relief::Hills {
            amplitude_ft,
            feature_cells,
        } = self.relief
        {
            let elev = synth::rescale(
                &synth::noise_field(self.rows, self.cols, feature_cells, 3, self.seed ^ 0x51EE7),
                0.0,
                amplitude_ft,
            );
            let (slope, aspect) = synth::slope_aspect_from_elevation(&elev, self.cell_ft);
            terrain = terrain.with_slope(slope).with_aspect(aspect);
        }
        if let WindField::Gusty {
            min_factor,
            max_factor,
            veer_deg,
            feature_cells,
        } = self.wind
        {
            let speed = synth::rescale(
                &synth::noise_field(self.rows, self.cols, feature_cells, 2, self.seed ^ 0x817D),
                min_factor,
                max_factor,
            );
            let veer = synth::rescale(
                &synth::noise_field(self.rows, self.cols, feature_cells, 2, self.seed ^ 0x7EE2),
                -veer_deg,
                veer_deg,
            );
            terrain = terrain.with_wind(speed, veer);
        }

        let truth: Vec<Scenario> = (0..self.steps).map(|i| self.truth.at(i)).collect();
        let times: Vec<f64> = (0..=self.steps)
            .map(|i| i as f64 * self.step_minutes)
            .collect();
        let terrain = Arc::new(terrain);
        let ignition = place_ignitions(&terrain, self.ignitions, truth[0].model, self.seed);
        Workload {
            name: self.name,
            description: self.description,
            terrain,
            ignition,
            times,
            truth,
        }
    }

    /// A scaled-down copy for smoke runs: the raster is capped at
    /// `max_dim` per side but never below 16 — small enough for CI, large
    /// enough that every pattern still places its ignitions (mosaic site
    /// counts shrink with the area; ignition counts are kept, so
    /// multi-front workloads stay multi-front) — and the schedule at 3
    /// intervals. Names are preserved so quick runs report under the same
    /// keys.
    pub fn shrunk(&self, max_dim: usize) -> WorkloadSpec {
        let dim = self.rows.max(self.cols);
        if dim <= max_dim && self.steps <= 3 {
            return self.clone();
        }
        let scale = (max_dim as f64 / dim as f64).min(1.0);
        let rows = ((self.rows as f64 * scale).round() as usize).max(16);
        let cols = ((self.cols as f64 * scale).round() as usize).max(16);
        let fuel = match &self.fuel {
            FuelPattern::Mosaic { sites, codes } => FuelPattern::Mosaic {
                // Keep at least one site per code so shrinking never drops a
                // pattern's later codes (e.g. a trailing firebreak code).
                sites: ((*sites as f64 * scale * scale).round() as usize)
                    .max(4)
                    .max(codes.len()),
                codes: codes.clone(),
            },
            other => other.clone(),
        };
        WorkloadSpec {
            rows,
            cols,
            fuel,
            steps: self.steps.min(3),
            ..self.clone()
        }
    }
}

/// A concrete, expanded workload: everything a burn case needs, bundled
/// with the machinery to generate its synthetic reference fire.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Corpus key.
    pub name: &'static str,
    /// Human description.
    pub description: &'static str,
    /// The landscape, shared read-only (workers clone the `Arc`, never the
    /// rasters).
    pub terrain: Arc<Terrain>,
    /// Initial fire line (possibly multi-point).
    pub ignition: FireLine,
    /// Observation instants `t_0 < … < t_steps` (minutes).
    pub times: Vec<f64>,
    /// Hidden truth, one scenario per interval.
    pub truth: Vec<Scenario>,
}

impl Workload {
    /// A simulator over this workload's (shared) terrain.
    pub fn sim(&self) -> FireSim {
        FireSim::shared(Arc::clone(&self.terrain))
    }

    /// The synthetic "real fire": simulates the hidden truth over every
    /// interval, accumulating burned state (fire never regresses), and
    /// returns one reference fire line per instant — `reference[0]` is the
    /// ignition.
    pub fn reference_lines(&self, sim: &FireSim) -> Vec<FireLine> {
        self.lines_for(sim, &self.truth)
    }

    /// Simulates an arbitrary per-interval scenario sequence over this
    /// workload's schedule (same accumulation rule as the reference: fire
    /// never regresses). This is the replicate primitive of ensemble
    /// forecasting — each perturbed truth runs through exactly the
    /// machinery that generates the reference fire.
    ///
    /// # Panics
    /// Panics when `truth` does not provide one scenario per interval.
    pub fn lines_for(&self, sim: &FireSim, truth: &[Scenario]) -> Vec<FireLine> {
        assert_eq!(
            truth.len(),
            self.times.len() - 1,
            "one scenario per interval"
        );
        let mut lines = vec![self.ignition.clone()];
        let mut arena = sim.arena();
        for (i, scenario) in truth.iter().enumerate() {
            let from = lines.last().expect("non-empty").clone();
            let dt = self.times[i + 1] - self.times[i];
            let map = sim.simulate_arena(scenario, &from, self.times[i], dt, &mut arena);
            let grown = map.fire_line_at(self.times[i + 1]);
            lines.push(from.union(&grown));
        }
        lines
    }

    /// Fraction of cells whose fuel bed can burn under the first truth
    /// scenario (corpus validity: must be positive, or the workload is a
    /// rock garden).
    pub fn burnable_fraction(&self) -> f64 {
        let beds = standard_beds();
        let model = self.truth[0].model;
        let total = self.terrain.rows() * self.terrain.cols();
        let mut burnable = 0usize;
        for r in 0..self.terrain.rows() {
            for c in 0..self.terrain.cols() {
                if beds[self.terrain.fuel_at(r, c, model) as usize].burnable {
                    burnable += 1;
                }
            }
        }
        burnable as f64 / total as f64
    }
}

/// Deterministically places `count` ignition points on burnable cells,
/// scattered by the seed (stride-probing from hashed start cells, so two
/// ignitions never coincide).
fn place_ignitions(terrain: &Terrain, count: usize, truth_model: u8, seed: u64) -> FireLine {
    let beds = standard_beds();
    let rows = terrain.rows();
    let cols = terrain.cols();
    let cells = rows * cols;
    // A stride coprime with the cell count visits every cell exactly once.
    let mut stride = (cells / 2 + 7) | 1;
    while gcd(stride, cells) != 1 {
        stride += 2;
    }
    let mut line = FireLine::empty(rows, cols);
    let mut placed = 0usize;
    let mut probe = (synth::mix(seed ^ 0x1617_1710) as usize) % cells;
    let mut visited = 0usize;
    while placed < count && visited < cells {
        let (r, c) = (probe / cols, probe % cols);
        let burnable = beds[terrain.fuel_at(r, c, truth_model) as usize].burnable;
        if burnable && !line.is_burned(r, c) {
            line.set_burned(r, c, true);
            placed += 1;
            // Re-hash so successive ignitions scatter instead of clustering
            // along the probe sequence.
            probe = (synth::mix(seed.wrapping_add((placed as u64).wrapping_mul(0x9E3779B97F4A7C15)))
                as usize)
                % cells;
            visited = 0;
            continue;
        }
        probe = (probe + stride) % cells;
        visited += 1;
    }
    assert!(
        placed == count,
        "could not place {count} ignitions on burnable ground"
    );
    line
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

// ---------------------------------------------------------------------------
// The corpus
// ---------------------------------------------------------------------------

fn dry_grass_truth() -> Scenario {
    Scenario {
        model: 1,
        wind_speed_mph: 7.0,
        wind_dir_deg: 90.0,
        m1_pct: 5.0,
        m10_pct: 7.0,
        m100_pct: 9.0,
        mherb_pct: 90.0,
        slope_deg: 0.0,
        aspect_deg: 0.0,
    }
}

/// 32×32 uniform short grass, single ignition — the smallest end-to-end
/// workload (smoke tests, CI).
pub fn meadow_small() -> WorkloadSpec {
    WorkloadSpec {
        name: "meadow_small",
        description: "32x32 uniform short grass, single ignition, static 7 mph easterly truth",
        rows: 32,
        cols: 32,
        cell_ft: 100.0,
        seed: 0xA11CE,
        fuel: FuelPattern::FromScenario,
        relief: Relief::Flat,
        wind: WindField::FromScenario,
        ignitions: 1,
        steps: 4,
        step_minutes: 15.0,
        truth: TruthDrift::Static(dry_grass_truth()),
    }
}

/// 96×96 Voronoi fuel mosaic (grass / timber-grass / chaparral / brush /
/// timber litter), single ignition — the canonical heterogeneous-fuel
/// workload, and the per-fuel spread-cache fast path.
pub fn patchwork_mosaic() -> WorkloadSpec {
    WorkloadSpec {
        name: "patchwork_mosaic",
        description: "96x96 five-fuel Voronoi mosaic, single ignition, static truth",
        rows: 96,
        cols: 96,
        cell_ft: 100.0,
        seed: 0xB0CA2,
        fuel: FuelPattern::Mosaic {
            sites: 40,
            codes: vec![1, 2, 4, 5, 10],
        },
        relief: Relief::Flat,
        wind: WindField::FromScenario,
        ignitions: 1,
        steps: 5,
        step_minutes: 20.0,
        truth: TruthDrift::Static(Scenario {
            wind_speed_mph: 8.0,
            ..dry_grass_truth()
        }),
    }
}

/// 112×112 fractal foothills: noise elevation → per-cell slope/aspect, fuel
/// from the scenario — relief without a fuel mosaic.
pub fn ridged_foothills() -> WorkloadSpec {
    WorkloadSpec {
        name: "ridged_foothills",
        description: "112x112 fractal foothills (DEM-derived slope/aspect), single ignition",
        rows: 112,
        cols: 112,
        cell_ft: 100.0,
        seed: 0xF007,
        fuel: FuelPattern::FromScenario,
        relief: Relief::Hills {
            amplitude_ft: 1200.0,
            feature_cells: 28.0,
        },
        wind: WindField::FromScenario,
        ignitions: 1,
        steps: 5,
        step_minutes: 18.0,
        truth: TruthDrift::Static(Scenario {
            model: 2,
            wind_speed_mph: 6.0,
            wind_dir_deg: 45.0,
            ..dry_grass_truth()
        }),
    }
}

/// 96×96 gusty two-fuel mosaic: a smooth wind-speed/veer field modulates
/// the scenario wind per cell — the spatially-varying-wind workload.
pub fn gusty_channel() -> WorkloadSpec {
    WorkloadSpec {
        name: "gusty_channel",
        description: "96x96 grass/tall-grass mosaic under a gusty, veering wind field",
        rows: 96,
        cols: 96,
        cell_ft: 100.0,
        seed: 0x6057,
        fuel: FuelPattern::Mosaic {
            sites: 24,
            codes: vec![1, 3],
        },
        relief: Relief::Flat,
        wind: WindField::Gusty {
            min_factor: 0.4,
            max_factor: 1.8,
            veer_deg: 35.0,
            feature_cells: 20.0,
        },
        ignitions: 1,
        steps: 5,
        step_minutes: 15.0,
        truth: TruthDrift::Static(Scenario {
            wind_speed_mph: 9.0,
            wind_dir_deg: 180.0,
            ..dry_grass_truth()
        }),
    }
}

/// 64×64 two simultaneous ignition fronts under a veering, strengthening
/// truth — multi-ignition plus the §IV drift stress.
pub fn twin_fronts() -> WorkloadSpec {
    WorkloadSpec {
        name: "twin_fronts",
        description: "64x64 grass, two ignition fronts, wind veers 90 degrees over the burn",
        rows: 64,
        cols: 64,
        cell_ft: 100.0,
        seed: 0x271,
        fuel: FuelPattern::FromScenario,
        relief: Relief::Flat,
        wind: WindField::FromScenario,
        ignitions: 2,
        steps: 5,
        step_minutes: 12.0,
        truth: TruthDrift::VeeringWind {
            base: Scenario {
                wind_speed_mph: 6.0,
                wind_dir_deg: 0.0,
                ..dry_grass_truth()
            },
            deg_per_step: 22.5,
            mph_per_step: 1.2,
        },
    }
}

/// 80×80 mosaic threaded with unburnable patches (rock, water): fire must
/// route around firebreaks, two fronts.
pub fn firebreak_maze() -> WorkloadSpec {
    WorkloadSpec {
        name: "firebreak_maze",
        description: "80x80 fuel mosaic threaded with unburnable rock/water patches, two fronts",
        rows: 80,
        cols: 80,
        cell_ft: 100.0,
        seed: 0xBEA7,
        fuel: FuelPattern::Mosaic {
            sites: 64,
            codes: vec![1, 2, 0, 4, 1, 2, 10, 0],
        },
        relief: Relief::Flat,
        wind: WindField::FromScenario,
        ignitions: 2,
        steps: 5,
        step_minutes: 25.0,
        truth: TruthDrift::Static(Scenario {
            wind_speed_mph: 8.0,
            wind_dir_deg: 135.0,
            ..dry_grass_truth()
        }),
    }
}

/// 200×200 island archipelago: a large mosaic with water gaps and three
/// ignition fronts — the corpus performance workload (the arena speedup
/// acceptance target).
pub fn archipelago_large() -> WorkloadSpec {
    WorkloadSpec {
        name: "archipelago_large",
        description: "200x200 island fuel archipelago with water gaps, three ignition fronts",
        rows: 200,
        cols: 200,
        cell_ft: 100.0,
        seed: 0xA2C4,
        fuel: FuelPattern::Mosaic {
            sites: 150,
            codes: vec![1, 2, 4, 10, 1, 2, 0],
        },
        relief: Relief::Flat,
        wind: WindField::FromScenario,
        ignitions: 3,
        steps: 4,
        step_minutes: 30.0,
        truth: TruthDrift::Static(Scenario {
            wind_speed_mph: 10.0,
            ..dry_grass_truth()
        }),
    }
}

/// The full named corpus, smallest first.
pub fn corpus() -> Vec<WorkloadSpec> {
    vec![
        meadow_small(),
        twin_fronts(),
        firebreak_maze(),
        patchwork_mosaic(),
        gusty_channel(),
        ridged_foothills(),
        archipelago_large(),
    ]
}

// ---------------------------------------------------------------------------
// The XL tier — Cell2Fire-class landscapes (≥ 1000×1000 cells)
// ---------------------------------------------------------------------------

/// 1000×1000 ridge-and-valley terrain: fractal DEM relief expanded into
/// per-cell slope/aspect layers (the fully heterogeneous, per-cell
/// spread-table path at landscape scale), single ignition so the burn stays
/// a compact front — the active-front window workload.
pub fn ridge_valley_xl() -> WorkloadSpec {
    WorkloadSpec {
        name: "ridge_valley_xl",
        description: "1000x1000 ridge-valley DEM relief (per-cell slope/aspect), single ignition",
        rows: 1000,
        cols: 1000,
        cell_ft: 100.0,
        seed: 0x81D6E,
        fuel: FuelPattern::FromScenario,
        relief: Relief::Hills {
            amplitude_ft: 900.0,
            feature_cells: 64.0,
        },
        wind: WindField::FromScenario,
        ignitions: 1,
        steps: 3,
        step_minutes: 30.0,
        truth: TruthDrift::Static(Scenario {
            model: 2,
            wind_speed_mph: 6.0,
            wind_dir_deg: 45.0,
            ..dry_grass_truth()
        }),
    }
}

/// 1024×1024 fuel mosaic threaded with unburnable firebreak corridors
/// (code-0 patches) under a gusty wind field: fuel + wind override layers
/// together force the fully heterogeneous per-cell spread path at
/// landscape scale, with one front routing around the breaks.
pub fn breaks_mosaic_xl() -> WorkloadSpec {
    WorkloadSpec {
        name: "breaks_mosaic_xl",
        description: "1024x1024 gusty fuel mosaic with unburnable firebreak patches, one front",
        rows: 1024,
        cols: 1024,
        cell_ft: 100.0,
        seed: 0xB2EA5,
        fuel: FuelPattern::Mosaic {
            sites: 900,
            codes: vec![1, 2, 4, 0, 1, 10, 2, 0],
        },
        relief: Relief::Flat,
        wind: WindField::Gusty {
            min_factor: 0.5,
            max_factor: 1.4,
            veer_deg: 25.0,
            feature_cells: 90.0,
        },
        ignitions: 1,
        steps: 3,
        // Short intervals keep the active front (and so the bucket
        // kernel's gather window) a small fraction of the 1024² raster —
        // the short-duration-burn memory profile the arena is sized for.
        step_minutes: 15.0,
        truth: TruthDrift::Static(Scenario {
            wind_speed_mph: 8.0,
            wind_dir_deg: 135.0,
            ..dry_grass_truth()
        }),
    }
}

/// 1000×1200 (non-square) island archipelago with water gaps and four
/// scattered ignition fronts — multi-ignition at landscape scale on a
/// rows ≠ cols raster, so any row/col mix-up in the front-bounding code
/// shows up immediately.
pub fn archipelago_xl() -> WorkloadSpec {
    WorkloadSpec {
        name: "archipelago_xl",
        description: "1000x1200 island fuel archipelago with water gaps, four ignition fronts",
        rows: 1000,
        cols: 1200,
        cell_ft: 100.0,
        seed: 0xA2C4F,
        fuel: FuelPattern::Mosaic {
            sites: 1100,
            codes: vec![1, 2, 4, 10, 1, 2, 0],
        },
        relief: Relief::Flat,
        wind: WindField::FromScenario,
        ignitions: 4,
        steps: 3,
        step_minutes: 30.0,
        truth: TruthDrift::Static(Scenario {
            wind_speed_mph: 10.0,
            ..dry_grass_truth()
        }),
    }
}

/// The XL corpus tier, kept separate from [`corpus`]: these specs expand to
/// megacell rasters, so debug-mode test sweeps iterate [`corpus`] while the
/// landscape bench (and anything release-built) opts into the XL tier
/// explicitly.
pub fn xl_corpus() -> Vec<WorkloadSpec> {
    vec![ridge_valley_xl(), breaks_mosaic_xl(), archipelago_xl()]
}

/// XL-tier workload names, in tier order.
pub fn xl_names() -> Vec<&'static str> {
    xl_corpus().into_iter().map(|w| w.name).collect()
}

/// Corpus workload names, in corpus order (XL tier excluded; see
/// [`xl_names`]).
pub fn names() -> Vec<&'static str> {
    corpus().into_iter().map(|w| w.name).collect()
}

/// Fetches one spec by name, searching the standard corpus and then the XL
/// tier.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    corpus()
        .into_iter()
        .chain(xl_corpus())
        .find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_at_least_six_distinct_workloads() {
        let names = names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(names.len() >= 6, "corpus too small: {}", names.len());
        assert_eq!(dedup.len(), names.len(), "duplicate workload names");
    }

    #[test]
    fn corpus_varies_the_advertised_axes() {
        let specs = corpus();
        let mosaics = specs
            .iter()
            .filter(|s| matches!(s.fuel, FuelPattern::Mosaic { .. }))
            .count();
        let winds = specs
            .iter()
            .filter(|s| matches!(s.wind, WindField::Gusty { .. }))
            .count();
        let multi = specs.iter().filter(|s| s.ignitions > 1).count();
        let sizes: std::collections::BTreeSet<usize> = specs.iter().map(|s| s.rows).collect();
        assert!(mosaics >= 3, "need fuel-mosaic variety");
        assert!(winds >= 1, "need a spatially varying wind workload");
        assert!(multi >= 2, "need multi-ignition workloads");
        assert!(sizes.len() >= 4, "need grid-size variety: {sizes:?}");
        assert!(specs.iter().any(|s| s.rows >= 200), "need the large grid");
    }

    #[test]
    fn build_is_deterministic() {
        let a = patchwork_mosaic().build();
        let b = patchwork_mosaic().build();
        assert_eq!(a.ignition, b.ignition);
        assert_eq!(a.times, b.times);
        assert_eq!(a.truth, b.truth);
        let sim_a = a.sim();
        let sim_b = b.sim();
        assert_eq!(a.reference_lines(&sim_a), b.reference_lines(&sim_b));
    }

    #[test]
    fn ignition_counts_match_spec() {
        for spec in corpus() {
            let w = spec.build();
            assert_eq!(
                w.ignition.burned_area(),
                spec.ignitions,
                "{}: wrong ignition count",
                spec.name
            );
        }
    }

    #[test]
    fn veering_truth_drifts() {
        let w = twin_fronts().build();
        assert!(w.truth[1].wind_dir_deg > w.truth[0].wind_dir_deg);
        assert!(w.truth[1].wind_speed_mph > w.truth[0].wind_speed_mph);
    }

    #[test]
    fn shrunk_caps_dimensions_and_keeps_name() {
        let big = archipelago_large();
        let small = big.shrunk(48);
        assert_eq!(small.name, big.name);
        assert!(small.rows <= 48 && small.cols <= 48);
        assert!(small.steps <= 3);
        // Small workload still builds and burns.
        let w = small.build();
        let sim = w.sim();
        let lines = w.reference_lines(&sim);
        assert!(lines.last().unwrap().burned_area() > w.ignition.burned_area());
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for spec in corpus().into_iter().chain(xl_corpus()) {
            assert_eq!(by_name(spec.name).unwrap(), spec);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn xl_tier_covers_the_landscape_axes() {
        let specs = xl_corpus();
        assert!(specs.len() >= 3, "XL tier too small: {}", specs.len());
        for s in &specs {
            assert!(
                s.rows >= 1000 && s.cols >= 1000,
                "{}: not landscape-scale ({}x{})",
                s.name,
                s.rows,
                s.cols
            );
            assert!(
                !names().contains(&s.name),
                "{}: XL name collides with the standard corpus",
                s.name
            );
        }
        assert!(
            specs
                .iter()
                .any(|s| matches!(s.relief, Relief::Hills { .. })),
            "XL tier needs a DEM-relief (per-cell) workload"
        );
        assert!(
            specs.iter().any(|s| s.rows != s.cols),
            "XL tier needs a non-square raster"
        );
        assert!(
            specs.iter().any(|s| s.ignitions >= 3),
            "XL tier needs a scattered multi-ignition workload"
        );
    }

    #[test]
    fn xl_specs_build_and_burn_when_shrunk() {
        // Full-size XL builds are release-bench territory; the shrunk
        // copies exercise every generator parameter in debug time.
        for spec in xl_corpus() {
            let w = spec.shrunk(96).build();
            assert_eq!(w.ignition.burned_area(), spec.ignitions, "{}", spec.name);
            let sim = w.sim();
            let lines = w.reference_lines(&sim);
            assert!(
                lines.last().unwrap().burned_area() > w.ignition.burned_area(),
                "{}: shrunk workload did not burn",
                spec.name
            );
        }
    }
}
