//! Fuel particles, fuel models and the standard NFFL catalog.
//!
//! The 13 Northern Forest Fire Laboratory (NFFL) fuel models are the
//! taxonomy referenced by Table I of the paper ("Rothermel Fuel Model,
//! 1–13"). Parameter values reproduce fireLib's
//! `Fire_FuelCatalogCreateStandard`: loads in lb/ft², surface-area-to-volume
//! ratios in ft²/ft³, fuel-bed depth in ft, extinction moisture as a
//! fraction.

/// Life category of a fuel particle (drives the moisture-damping split in
/// the Rothermel model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuelLife {
    /// Dead fuel: 1-hour, 10-hour and 100-hour timelag classes.
    Dead,
    /// Live herbaceous fuel.
    LiveHerb,
    /// Live woody fuel.
    LiveWood,
}

impl FuelLife {
    /// `true` for the dead category.
    pub fn is_dead(self) -> bool {
        matches!(self, FuelLife::Dead)
    }
}

/// One fuel particle class within a fuel bed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuelParticle {
    /// Life category.
    pub life: FuelLife,
    /// Oven-dry fuel load (lb/ft²).
    pub load: f64,
    /// Surface-area-to-volume ratio (ft²/ft³ ≡ 1/ft).
    pub savr: f64,
    /// Particle density (lb/ft³). 32 for all standard models.
    pub density: f64,
    /// Low heat content (Btu/lb). 8000 for all standard models.
    pub heat: f64,
    /// Total silica content (fraction). 0.0555 standard.
    pub si_total: f64,
    /// Effective silica content (fraction). 0.0100 standard.
    pub si_effective: f64,
}

impl FuelParticle {
    /// Standard particle with fireLib's default density, heat and silica.
    pub fn standard(life: FuelLife, load: f64, savr: f64) -> Self {
        Self {
            life,
            load,
            savr,
            density: 32.0,
            heat: 8000.0,
            si_total: 0.0555,
            si_effective: 0.0100,
        }
    }

    /// Surface area contribution per unit ground area: `load × savr / ρ`.
    pub fn surface_area(&self) -> f64 {
        if self.density <= 0.0 {
            0.0
        } else {
            self.load * self.savr / self.density
        }
    }

    /// fireLib's fine-fuel exponential weighting `exp(-138 / savr)` (dead)
    /// used in the heat-of-preignition and live-extinction computations.
    pub fn sigma_factor_dead(&self) -> f64 {
        if self.savr <= 0.0 {
            0.0
        } else {
            (-138.0 / self.savr).exp()
        }
    }

    /// Live-fuel analogue `exp(-500 / savr)`.
    pub fn sigma_factor_live(&self) -> f64 {
        if self.savr <= 0.0 {
            0.0
        } else {
            (-500.0 / self.savr).exp()
        }
    }
}

/// A fuel model: a named fuel bed composed of particle classes.
#[derive(Debug, Clone, PartialEq)]
pub struct FuelModel {
    /// Model number (1–13 for the NFFL models, 0 = no fuel).
    pub number: u8,
    /// Short name.
    pub name: &'static str,
    /// Human-readable description (as in the BEHAVE documentation).
    pub description: &'static str,
    /// Fuel bed depth (ft).
    pub depth: f64,
    /// Dead fuel moisture of extinction (fraction).
    pub mext_dead: f64,
    /// Particle classes.
    pub particles: Vec<FuelParticle>,
}

impl FuelModel {
    /// Total oven-dry load over all particles (lb/ft²).
    pub fn total_load(&self) -> f64 {
        self.particles.iter().map(|p| p.load).sum()
    }

    /// `true` when the model carries any live (herb or woody) fuel.
    pub fn has_live_fuel(&self) -> bool {
        self.particles.iter().any(|p| !p.life.is_dead())
    }

    /// `true` when the bed can carry fire at all.
    pub fn is_burnable(&self) -> bool {
        self.depth > 0.0 && self.total_load() > 0.0
    }
}

/// Surface-area-to-volume ratios fireLib assigns to the timelag classes.
pub const SAVR_10HR: f64 = 109.0;
/// 100-hour dead fuel SAV ratio.
pub const SAVR_100HR: f64 = 30.0;

/// The standard fuel model catalog: entry 0 is "no fuel", entries 1–13 are
/// the NFFL models.
#[derive(Debug, Clone)]
pub struct FuelCatalog {
    models: Vec<FuelModel>,
}

impl FuelCatalog {
    /// Builds the standard 14-entry catalog (0 = NoFuel, 1–13 = NFFL),
    /// mirroring fireLib's `Fire_FuelCatalogCreateStandard`.
    pub fn standard() -> Self {
        // (number, name, description, depth, mext,
        //  1hr load, 1hr savr, 10hr load, 100hr load,
        //  herb load, herb savr, wood load, wood savr)
        type Row = (
            u8,
            &'static str,
            &'static str,
            f64,
            f64,
            f64,
            f64,
            f64,
            f64,
            f64,
            f64,
            f64,
            f64,
        );
        const ROWS: [Row; 14] = [
            (
                0,
                "NoFuel",
                "No combustible fuel",
                0.1,
                0.01,
                0.0,
                1500.0,
                0.0,
                0.0,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                1,
                "NFFL01",
                "Short grass (1 ft)",
                1.0,
                0.12,
                0.0340,
                3500.0,
                0.0,
                0.0,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                2,
                "NFFL02",
                "Timber (grass & understory)",
                1.0,
                0.15,
                0.0920,
                3000.0,
                0.0460,
                0.0230,
                0.0230,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                3,
                "NFFL03",
                "Tall grass (2.5 ft)",
                2.5,
                0.25,
                0.1380,
                1500.0,
                0.0,
                0.0,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                4,
                "NFFL04",
                "Chaparral (6 ft)",
                6.0,
                0.20,
                0.2300,
                2000.0,
                0.1840,
                0.0920,
                0.0,
                1500.0,
                0.2300,
                1500.0,
            ),
            (
                5,
                "NFFL05",
                "Brush (2 ft)",
                2.0,
                0.20,
                0.0460,
                2000.0,
                0.0230,
                0.0,
                0.0,
                1500.0,
                0.0920,
                1500.0,
            ),
            (
                6,
                "NFFL06",
                "Dormant brush & hardwood slash",
                2.5,
                0.25,
                0.0690,
                1750.0,
                0.1150,
                0.0920,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                7,
                "NFFL07",
                "Southern rough",
                2.5,
                0.40,
                0.0520,
                1750.0,
                0.0860,
                0.0690,
                0.0,
                1500.0,
                0.0170,
                1550.0,
            ),
            (
                8,
                "NFFL08",
                "Closed timber litter",
                0.2,
                0.30,
                0.0690,
                2000.0,
                0.0460,
                0.1150,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                9,
                "NFFL09",
                "Hardwood litter",
                0.2,
                0.25,
                0.1340,
                2500.0,
                0.0190,
                0.0070,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                10,
                "NFFL10",
                "Timber (litter & understory)",
                1.0,
                0.25,
                0.1380,
                2000.0,
                0.0920,
                0.2300,
                0.0,
                1500.0,
                0.0920,
                1500.0,
            ),
            (
                11,
                "NFFL11",
                "Light logging slash",
                1.0,
                0.15,
                0.0690,
                1500.0,
                0.2070,
                0.2530,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                12,
                "NFFL12",
                "Medium logging slash",
                2.3,
                0.20,
                0.1840,
                1500.0,
                0.6440,
                0.7590,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
            (
                13,
                "NFFL13",
                "Heavy logging slash",
                3.0,
                0.25,
                0.3220,
                1500.0,
                1.0580,
                1.2880,
                0.0,
                1500.0,
                0.0,
                1500.0,
            ),
        ];

        let models = ROWS
            .iter()
            .map(
                |&(num, name, desc, depth, mext, l1, s1, l10, l100, lherb, sherb, lwood, swood)| {
                    let mut particles = Vec::new();
                    if l1 > 0.0 {
                        particles.push(FuelParticle::standard(FuelLife::Dead, l1, s1));
                    }
                    if l10 > 0.0 {
                        particles.push(FuelParticle::standard(FuelLife::Dead, l10, SAVR_10HR));
                    }
                    if l100 > 0.0 {
                        particles.push(FuelParticle::standard(FuelLife::Dead, l100, SAVR_100HR));
                    }
                    if lherb > 0.0 {
                        particles.push(FuelParticle::standard(FuelLife::LiveHerb, lherb, sherb));
                    }
                    if lwood > 0.0 {
                        particles.push(FuelParticle::standard(FuelLife::LiveWood, lwood, swood));
                    }
                    FuelModel {
                        number: num,
                        name,
                        description: desc,
                        depth,
                        mext_dead: mext,
                        particles,
                    }
                },
            )
            .collect();
        Self { models }
    }

    /// Number of models (14 for the standard catalog).
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` when the catalog holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Fetches a model by number.
    pub fn model(&self, number: u8) -> Option<&FuelModel> {
        self.models.iter().find(|m| m.number == number)
    }

    /// All models, ascending by number.
    pub fn models(&self) -> &[FuelModel] {
        &self.models
    }
}

impl Default for FuelCatalog {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_has_fourteen_models() {
        let cat = FuelCatalog::standard();
        assert_eq!(cat.len(), 14);
        for n in 0..=13u8 {
            assert!(cat.model(n).is_some(), "model {n} missing");
        }
        assert!(cat.model(14).is_none());
    }

    #[test]
    fn grass_model_is_pure_fine_dead_fuel() {
        let cat = FuelCatalog::standard();
        let m1 = cat.model(1).unwrap();
        assert_eq!(m1.particles.len(), 1);
        assert_eq!(m1.particles[0].savr, 3500.0);
        assert!(!m1.has_live_fuel());
        assert!((m1.total_load() - 0.034).abs() < 1e-12);
    }

    #[test]
    fn live_fuel_models_are_2_4_5_7_10() {
        let cat = FuelCatalog::standard();
        let with_live: Vec<u8> = cat
            .models()
            .iter()
            .filter(|m| m.has_live_fuel())
            .map(|m| m.number)
            .collect();
        assert_eq!(with_live, vec![2, 4, 5, 7, 10]);
    }

    #[test]
    fn slash_models_have_heaviest_loads() {
        let cat = FuelCatalog::standard();
        let l12 = cat.model(12).unwrap().total_load();
        let l13 = cat.model(13).unwrap().total_load();
        let l1 = cat.model(1).unwrap().total_load();
        assert!(l13 > l12 && l12 > l1);
        assert!((l13 - (0.3220 + 1.0580 + 1.2880)).abs() < 1e-9);
    }

    #[test]
    fn extinction_moisture_matches_behave_tables() {
        let cat = FuelCatalog::standard();
        let expect = [
            (1u8, 0.12),
            (2, 0.15),
            (3, 0.25),
            (4, 0.20),
            (7, 0.40),
            (8, 0.30),
            (11, 0.15),
        ];
        for (n, mx) in expect {
            assert_eq!(cat.model(n).unwrap().mext_dead, mx, "model {n}");
        }
    }

    #[test]
    fn no_fuel_model_is_unburnable() {
        let cat = FuelCatalog::standard();
        let m0 = cat.model(0).unwrap();
        assert!(!m0.is_burnable());
        assert!(cat.model(1).unwrap().is_burnable());
    }

    #[test]
    fn timelag_savr_constants() {
        let cat = FuelCatalog::standard();
        let m10 = cat.model(10).unwrap();
        let savrs: Vec<f64> = m10.particles.iter().map(|p| p.savr).collect();
        assert!(savrs.contains(&SAVR_10HR));
        assert!(savrs.contains(&SAVR_100HR));
    }

    #[test]
    fn surface_area_formula() {
        let p = FuelParticle::standard(FuelLife::Dead, 0.034, 3500.0);
        assert!((p.surface_area() - 0.034 * 3500.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_factors_monotone_in_savr() {
        let fine = FuelParticle::standard(FuelLife::Dead, 0.1, 3500.0);
        let coarse = FuelParticle::standard(FuelLife::Dead, 0.1, 30.0);
        assert!(fine.sigma_factor_dead() > coarse.sigma_factor_dead());
        assert!(fine.sigma_factor_live() > coarse.sigma_factor_live());
    }
}
