//! Derived fire-behaviour outputs: reaction residence time, heat per unit
//! area, Byram's fireline intensity and flame length.
//!
//! fireLib computes these alongside the spread rate (`Fire_FlameScorch`
//! and friends); prediction systems report them to decision makers ("tools
//! for predicting the behavior of forest fires are of great interest for
//! decision-making in fire control", paper §I). They are not part of the
//! optimisation loop, but the examples and the report harness expose them
//! so a downstream user gets the full fireLib-equivalent surface.

use crate::combustion::FuelBed;
use crate::moisture::MoistureRegime;
use crate::spread::{no_wind_no_slope, wind_slope_max, SpreadInputs, SpreadVector};
use crate::SMIDGEN;

/// Fire behaviour summary at one point for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FireBehaviour {
    /// Rate of spread at the head (ft/min).
    pub ros_head_fpm: f64,
    /// Reaction intensity (Btu/ft²/min).
    pub reaction_intensity: f64,
    /// Flame residence time (min), Anderson's `τ = 384/σ`.
    pub residence_time_min: f64,
    /// Heat per unit area (Btu/ft²): `I_R × τ`.
    pub heat_per_area: f64,
    /// Byram's fireline intensity at the head (Btu/ft/s):
    /// `I_B = H_A × ROS / 60`.
    pub byram_intensity: f64,
    /// Byram's flame length at the head (ft): `L = 0.45 × I_B^0.46`.
    pub flame_length_ft: f64,
}

/// Computes the derived behaviour numbers for a fuel bed under a moisture
/// regime and wind/slope inputs.
pub fn fire_behaviour(
    bed: &FuelBed,
    moisture: &MoistureRegime,
    inputs: &SpreadInputs,
) -> FireBehaviour {
    let vector = wind_slope_max(bed, moisture, inputs);
    let (_, rx_int) = no_wind_no_slope(bed, moisture);
    behaviour_from_vector(bed, rx_int, &vector)
}

/// The same computation when the spread vector is already available
/// (avoids re-deriving it in the per-cell reporting loops).
pub fn behaviour_from_vector(
    bed: &FuelBed,
    reaction_intensity: f64,
    vector: &SpreadVector,
) -> FireBehaviour {
    let residence = if bed.sigma > SMIDGEN {
        384.0 / bed.sigma
    } else {
        0.0
    };
    let hpa = reaction_intensity * residence;
    let byram = hpa * vector.ros_max / 60.0;
    let flame = if byram > SMIDGEN {
        0.45 * byram.powf(0.46)
    } else {
        0.0
    };
    FireBehaviour {
        ros_head_fpm: vector.ros_max,
        reaction_intensity,
        residence_time_min: residence,
        heat_per_area: hpa,
        byram_intensity: byram,
        flame_length_ft: flame,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FuelCatalog;
    use crate::MPH_TO_FPM;

    fn bed(n: u8) -> FuelBed {
        FuelBed::new(FuelCatalog::standard().model(n).unwrap())
    }

    fn windy(mph: f64) -> SpreadInputs {
        SpreadInputs {
            wind_fpm: mph * MPH_TO_FPM,
            wind_azimuth: 0.0,
            ..SpreadInputs::calm()
        }
    }

    #[test]
    fn grass_flame_length_plausible() {
        // NFFL 1 at ~5 % moisture with a 5 mph wind: BEHAVE-style outputs
        // put flame length in the 1–6 ft band.
        let b = fire_behaviour(&bed(1), &MoistureRegime::moderate(), &windy(5.0));
        assert!(
            b.flame_length_ft > 1.0 && b.flame_length_ft < 8.0,
            "flame length {} ft",
            b.flame_length_ft
        );
        assert!(b.byram_intensity > 0.0);
    }

    #[test]
    fn chaparral_burns_hotter_than_grass() {
        // NFFL 4 carries ~20x the load of NFFL 1: far more heat per area
        // and a much longer flame.
        let g = fire_behaviour(&bed(1), &MoistureRegime::moderate(), &windy(8.0));
        let c = fire_behaviour(&bed(4), &MoistureRegime::moderate(), &windy(8.0));
        assert!(c.heat_per_area > 5.0 * g.heat_per_area);
        assert!(c.flame_length_ft > g.flame_length_ft);
    }

    #[test]
    fn residence_time_is_384_over_sigma() {
        let b1 = bed(1);
        let r = fire_behaviour(&b1, &MoistureRegime::moderate(), &SpreadInputs::calm());
        assert!((r.residence_time_min - 384.0 / 3500.0).abs() < 1e-12);
    }

    #[test]
    fn extinguished_bed_has_zero_outputs() {
        let b = fire_behaviour(&bed(1), &MoistureRegime::damp(), &windy(10.0));
        assert_eq!(b.byram_intensity, 0.0);
        assert_eq!(b.flame_length_ft, 0.0);
        assert_eq!(b.ros_head_fpm, 0.0);
    }

    #[test]
    fn wind_raises_intensity_via_ros() {
        let calm = fire_behaviour(&bed(1), &MoistureRegime::moderate(), &SpreadInputs::calm());
        let gale = fire_behaviour(&bed(1), &MoistureRegime::moderate(), &windy(15.0));
        // Heat per area is wind-independent; Byram's intensity scales with
        // the head ROS.
        assert!((calm.heat_per_area - gale.heat_per_area).abs() < 1e-9);
        assert!(gale.byram_intensity > 5.0 * calm.byram_intensity);
    }

    #[test]
    fn flame_length_monotone_in_intensity() {
        let mut last = 0.0;
        for mph in [0.0, 4.0, 8.0, 16.0] {
            let b = fire_behaviour(&bed(4), &MoistureRegime::moderate(), &windy(mph));
            assert!(b.flame_length_ft >= last);
            last = b.flame_length_ft;
        }
    }
}
