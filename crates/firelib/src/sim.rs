//! Cell-to-cell fire propagation — the `FS` block of Figs. 1–3.
//!
//! fireLib propagates fire over a raster of square cells by repeatedly
//! sweeping the map and assigning each cell the earliest arrival time from
//! any burning neighbour until a fixpoint is reached. Because every
//! cell-to-cell traversal time is non-negative and fixed for a given
//! scenario, that fixpoint is exactly the shortest-path (minimum travel
//! time) solution, which we compute directly with a Dijkstra sweep — same
//! result, deterministic, and `O(n log n)` instead of repeated full-map
//! sweeps.
//!
//! The traversal time of the edge from a burning cell to a neighbour is
//! `distance / ros_source(azimuth)`, i.e. the fire crosses the source cell's
//! fuel towards the neighbour, matching fireLib's per-cell spread
//! computation. Cells whose own fuel bed cannot burn are never ignited.

use crate::catalog::FuelCatalog;
use crate::combustion::FuelBed;
use crate::scenario::Scenario;
use crate::spread::{wind_slope_max, SpreadInputs, SpreadVector};
use crate::terrain::Terrain;
use crate::SMIDGEN;
use landscape::{FireLine, IgnitionMap};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-ordering wrapper for ignition times, ordered by
/// [`f64::total_cmp`] — branch-free and panic-free (times are never NaN by
/// construction, so IEEE total order and numeric order coincide here).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The fire propagation simulator for one terrain.
///
/// Construction precomputes the fuel-bed intermediates for all 14 catalog
/// entries; [`FireSim::simulate`] then evaluates one scenario. A `FireSim`
/// is cheap to clone and safe to share read-only across worker threads; for
/// allocation-free inner loops each worker should own one and use
/// [`FireSim::simulate_into`] with a reusable output map.
#[derive(Debug, Clone)]
pub struct FireSim {
    terrain: Terrain,
    beds: Vec<FuelBed>,
}

impl FireSim {
    /// Builds a simulator over `terrain` with the standard NFFL catalog.
    pub fn new(terrain: Terrain) -> Self {
        let catalog = FuelCatalog::standard();
        let beds = catalog.models().iter().map(FuelBed::new).collect();
        Self { terrain, beds }
    }

    /// The terrain this simulator burns.
    pub fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// Directional spread rates for one cell under `scenario`.
    fn cell_spread(&self, row: usize, col: usize, scenario: &Scenario) -> SpreadVector {
        let fuel = self.terrain.fuel_at(row, col, scenario.model);
        let bed = &self.beds[fuel as usize];
        if !bed.burnable {
            return SpreadVector::no_spread();
        }
        let slope_deg = self.terrain.slope_at(row, col, scenario.slope_deg);
        let aspect = self.terrain.aspect_at(row, col, scenario.aspect_deg);
        let inputs = SpreadInputs {
            wind_fpm: scenario.wind_speed_mph * crate::MPH_TO_FPM,
            wind_azimuth: scenario.wind_dir_deg,
            slope_steepness: slope_deg.to_radians().tan(),
            aspect_azimuth: aspect,
        };
        wind_slope_max(bed, &scenario.moisture(), &inputs)
    }

    /// Simulates fire growth from `initial` (cells burning at `t0`) for
    /// `duration` minutes, returning the ignition-time map. Cells the fire
    /// does not reach within the horizon hold [`landscape::UNIGNITED`];
    /// initial cells hold `t0`.
    ///
    /// # Panics
    /// Panics when `initial` does not match the terrain shape, `t0` is
    /// negative/non-finite or `duration` is not positive.
    pub fn simulate(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
    ) -> IgnitionMap {
        let mut out = IgnitionMap::unignited(self.terrain.rows(), self.terrain.cols());
        self.simulate_into(scenario, initial, t0, duration, &mut out);
        out
    }

    /// Allocation-reusing variant of [`FireSim::simulate`]: `out` is cleared
    /// and refilled, keeping its buffer (the worker hot path).
    pub fn simulate_into(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        out: &mut IgnitionMap,
    ) {
        let rows = self.terrain.rows();
        let cols = self.terrain.cols();
        assert_eq!(
            (initial.rows(), initial.cols()),
            (rows, cols),
            "initial fire line shape mismatch"
        );
        assert!(
            t0.is_finite() && t0 >= 0.0,
            "t0 must be a non-negative instant"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be positive"
        );
        assert_eq!(
            (out.rows(), out.cols()),
            (rows, cols),
            "output map shape mismatch"
        );

        out.clear();
        let t_end = t0 + duration;
        let cell_ft = self.terrain.cell_size_ft();

        // Directional spread table. With a uniform terrain every cell shares
        // one table; with overrides we compute per cell (caching by fuel
        // code would only help when slope/aspect layers are absent too).
        let uniform: Option<[f64; 8]> = if self.terrain.has_overrides() {
            None
        } else {
            Some(self.cell_spread(0, 0, scenario).compass_ros())
        };
        let per_cell: Vec<[f64; 8]> = if uniform.is_some() {
            Vec::new()
        } else {
            let mut v = Vec::with_capacity(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    v.push(self.cell_spread(r, c, scenario).compass_ros());
                }
            }
            v
        };
        let ros_of = |idx: usize| -> &[f64; 8] {
            match &uniform {
                Some(table) => table,
                None => &per_cell[idx],
            }
        };
        // A cell can ignite iff its own bed can burn (no-fuel cells are
        // firebreaks). With uniform terrain burnability is global.
        let burnable_at = |r: usize, c: usize| -> bool {
            let fuel = self.terrain.fuel_at(r, c, scenario.model);
            self.beds[fuel as usize].burnable
        };

        let mut heap: BinaryHeap<(Reverse<Time>, u32)> = BinaryHeap::new();
        for (r, c) in initial.burned_cells() {
            if !burnable_at(r, c) {
                continue;
            }
            let idx = r * cols + c;
            out.set_time(r, c, t0);
            heap.push((Reverse(Time(t0)), idx as u32));
        }

        while let Some((Reverse(Time(t)), idx)) = heap.pop() {
            let idx = idx as usize;
            let (r, c) = (idx / cols, idx % cols);
            if t > out.time(r, c) + SMIDGEN {
                continue; // stale entry
            }
            let table = ros_of(idx);
            for (dir, &(dr, dc, dist_factor)) in landscape::NEIGHBOUR_OFFSETS.iter().enumerate() {
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nc < 0 || nr as usize >= rows || nc as usize >= cols {
                    continue;
                }
                let (nr, nc) = (nr as usize, nc as usize);
                let ros = table[dir];
                if ros <= SMIDGEN {
                    continue;
                }
                let arrival = t + dist_factor * cell_ft / ros;
                if arrival > t_end || arrival >= out.time(nr, nc) - SMIDGEN {
                    continue;
                }
                if !burnable_at(nr, nc) {
                    continue;
                }
                out.set_time(nr, nc, arrival);
                heap.push((Reverse(Time(arrival)), (nr * cols + nc) as u32));
            }
        }
    }

    /// Convenience: simulates and returns the fire line at the end of the
    /// horizon (burned cells at `t0 + duration`).
    pub fn simulate_fire_line(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
    ) -> FireLine {
        self.simulate(scenario, initial, t0, duration)
            .fire_line_at(t0 + duration)
    }

    /// Maximum spread rate (ft/min) of `scenario` on a uniform cell of this
    /// terrain — exposed for workload sizing in the benches.
    pub fn max_ros(&self, scenario: &Scenario) -> f64 {
        self.cell_spread(0, 0, scenario).ros_max
    }
}

/// Builds the single-cell ignition used by most examples: the map centre
/// burning at `t = 0`.
pub fn centre_ignition(rows: usize, cols: usize) -> FireLine {
    FireLine::from_cells(rows, cols, &[(rows / 2, cols / 2)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use landscape::{Grid, UNIGNITED};

    fn flat_sim(n: usize) -> FireSim {
        FireSim::new(Terrain::uniform(n, n, 100.0))
    }

    fn calm_scenario() -> Scenario {
        Scenario {
            wind_speed_mph: 0.0,
            slope_deg: 0.0,
            ..Scenario::reference()
        }
    }

    #[test]
    fn fire_grows_from_ignition_point() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 300.0);
        assert_eq!(map.time(10, 10), 0.0);
        assert!(
            map.burned_count_at(300.0) > 1,
            "fire must spread beyond the ignition"
        );
    }

    #[test]
    fn calm_flat_fire_is_symmetric() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 500.0);
        for d in 1..=5usize {
            let north = map.time(10 - d, 10);
            let south = map.time(10 + d, 10);
            let east = map.time(10, 10 + d);
            let west = map.time(10, 10 - d);
            assert!((north - south).abs() < 1e-9);
            assert!((east - west).abs() < 1e-9);
            assert!((north - east).abs() < 1e-9);
        }
    }

    #[test]
    fn ignition_times_increase_with_distance() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 2000.0);
        let mut prev = 0.0;
        for d in 1..=8usize {
            let t = map.time(10, 10 + d);
            assert!(t > prev, "time must increase along a ray");
            prev = t;
        }
    }

    #[test]
    fn wind_skews_fire_downwind() {
        let sim = flat_sim(31);
        let scenario = Scenario {
            wind_speed_mph: 10.0,
            wind_dir_deg: 90.0,
            ..calm_scenario()
        };
        let map = sim.simulate(&scenario, &centre_ignition(31, 31), 0.0, 120.0);
        // Wind blows east: the eastern cell ignites earlier than the western.
        let east = map.time(15, 20);
        let west = map.time(15, 10);
        assert!(east < west, "east {east} < west {west} expected");
    }

    #[test]
    fn slope_skews_fire_upslope() {
        let sim = flat_sim(31);
        // Aspect 180° (south-facing) → upslope north (decreasing row).
        let scenario = Scenario {
            slope_deg: 30.0,
            aspect_deg: 180.0,
            ..calm_scenario()
        };
        let map = sim.simulate(&scenario, &centre_ignition(31, 31), 0.0, 300.0);
        let north = map.time(10, 15);
        let south = map.time(20, 15);
        assert!(north < south, "north {north} < south {south} expected");
    }

    #[test]
    fn horizon_bounds_ignition_times() {
        let sim = flat_sim(41);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(41, 41), 0.0, 60.0);
        for ((_, _), &t) in map.grid().iter_cells() {
            assert!(t == UNIGNITED || t <= 60.0 + 1e-9);
        }
    }

    #[test]
    fn longer_horizon_extends_shorter_map() {
        let sim = flat_sim(31);
        let s = calm_scenario();
        let short = sim.simulate(&s, &centre_ignition(31, 31), 0.0, 100.0);
        let long = sim.simulate(&s, &centre_ignition(31, 31), 0.0, 300.0);
        for r in 0..31 {
            for c in 0..31 {
                if short.time(r, c) != UNIGNITED {
                    assert!((short.time(r, c) - long.time(r, c)).abs() < 1e-9);
                }
            }
        }
        assert!(long.burned_count_at(300.0) > short.burned_count_at(100.0));
    }

    #[test]
    fn t0_offsets_all_times() {
        let sim = flat_sim(21);
        let s = calm_scenario();
        let at0 = sim.simulate(&s, &centre_ignition(21, 21), 0.0, 200.0);
        let at50 = sim.simulate(&s, &centre_ignition(21, 21), 50.0, 200.0);
        for r in 0..21 {
            for c in 0..21 {
                if at0.time(r, c) != UNIGNITED {
                    assert!((at50.time(r, c) - (at0.time(r, c) + 50.0)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn firebreak_stops_spread() {
        // A vertical stripe of no-fuel cells splits the map; fire ignited on
        // the left must never reach the right side.
        let mut fuel = Grid::filled(15, 15, 1u8);
        for r in 0..15 {
            fuel.set(r, 7, 0);
        }
        let sim = FireSim::new(Terrain::uniform(15, 15, 100.0).with_fuel(fuel));
        let ignition = FireLine::from_cells(15, 15, &[(7, 2)]);
        let map = sim.simulate(&calm_scenario(), &ignition, 0.0, 1e5);
        for r in 0..15 {
            assert_eq!(map.time(r, 7), UNIGNITED, "firebreak cell ({r},7) ignited");
            for c in 8..15 {
                assert_eq!(
                    map.time(r, c),
                    UNIGNITED,
                    "cell ({r},{c}) behind the break ignited"
                );
            }
        }
        assert!(map.burned_count_at(1e5) > 10);
    }

    #[test]
    fn damp_fuel_never_ignites_neighbours() {
        let sim = flat_sim(11);
        let scenario = Scenario {
            m1_pct: 30.0,
            m10_pct: 30.0,
            m100_pct: 30.0,
            ..calm_scenario()
        }; // far beyond model 1 extinction (12 %)
        let map = sim.simulate(&scenario, &centre_ignition(11, 11), 0.0, 1e6);
        assert_eq!(
            map.burned_count_at(1e6),
            1,
            "only the ignition cell may burn"
        );
    }

    #[test]
    fn unburnable_ignition_cell_is_ignored() {
        let mut fuel = Grid::filled(5, 5, 1u8);
        fuel.set(2, 2, 0);
        let sim = FireSim::new(Terrain::uniform(5, 5, 100.0).with_fuel(fuel));
        let map = sim.simulate(&calm_scenario(), &centre_ignition(5, 5), 0.0, 1e4);
        assert_eq!(map.burned_count_at(1e4), 0);
    }

    #[test]
    fn simulate_into_reuses_buffer_and_matches() {
        let sim = flat_sim(15);
        let s = calm_scenario();
        let fresh = sim.simulate(&s, &centre_ignition(15, 15), 0.0, 150.0);
        let mut reused = IgnitionMap::unignited(15, 15);
        // Pre-pollute to prove it clears.
        reused.set_time(0, 0, 1.0);
        sim.simulate_into(&s, &centre_ignition(15, 15), 0.0, 150.0, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn fire_line_convenience_matches_map() {
        let sim = flat_sim(15);
        let s = calm_scenario();
        let map = sim.simulate(&s, &centre_ignition(15, 15), 0.0, 150.0);
        let fl = sim.simulate_fire_line(&s, &centre_ignition(15, 15), 0.0, 150.0);
        assert_eq!(fl, map.fire_line_at(150.0));
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let sim = flat_sim(5);
        let _ = sim.simulate(&calm_scenario(), &centre_ignition(5, 5), 0.0, 0.0);
    }
}
