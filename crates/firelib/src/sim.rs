//! Cell-to-cell fire propagation — the `FS` block of Figs. 1–3.
//!
//! fireLib propagates fire over a raster of square cells by repeatedly
//! sweeping the map and assigning each cell the earliest arrival time from
//! any burning neighbour until a fixpoint is reached. Because every
//! cell-to-cell traversal time is non-negative and fixed for a given
//! scenario, that fixpoint is exactly the shortest-path (minimum travel
//! time) solution, which we compute directly with a Dijkstra sweep — same
//! result, deterministic, and `O(n log n)` instead of repeated full-map
//! sweeps.
//!
//! The traversal time of the edge from a burning cell to a neighbour is
//! `distance / ros_source(azimuth)`, i.e. the fire crosses the source cell's
//! fuel towards the neighbour, matching fireLib's per-cell spread
//! computation. Cells whose own fuel bed cannot burn are never ignited.

use crate::combustion::{standard_beds, FuelBed};
use crate::moisture::MoistureRegime;
use crate::scenario::Scenario;
use crate::spread::{
    no_wind_no_slope, wind_slope_from_ros0, wind_slope_max, SpreadInputs, SpreadVector,
};
use crate::terrain::Terrain;
use crate::SMIDGEN;
use landscape::geometry::normalize_azimuth;
use landscape::{FireLine, IgnitionMap};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Total-ordering wrapper for ignition times, ordered by
/// [`f64::total_cmp`] — branch-free and panic-free (times are never NaN by
/// construction, so IEEE total order and numeric order coincide here).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The worker-owned simulation arena: every buffer the propagation engine
/// needs across evaluations, allocated once and reused.
///
/// `FireSim` is immutable shared state (terrain + fuel beds behind `Arc`s);
/// a `SimArena` is the *mutable* counterpart one worker owns privately. It
/// holds the per-cell directional-spread cache, the Dijkstra heap and the
/// arrival-time raster. Every buffer is retained at its high-water mark, so
/// once capacities have grown to cover the scenarios a worker evaluates,
/// [`FireSim::simulate_arena`] performs **zero further allocations** —
/// construct one arena per worker (see [`FireSim::arena`]) and reuse it for
/// every scenario. (The Dijkstra heap's peak size is scenario-dependent: a
/// scenario with more arrival-time churn than any seen before can grow it
/// once more, after which that capacity, too, persists.)
#[derive(Debug, Clone)]
pub struct SimArena {
    /// Per-cell spread scratch: the directional tables plus the flat SoA
    /// gather buffers that feed them (filled only on terrains where spread
    /// varies with more than the fuel code).
    spread: SpreadScratch,
    /// Per-fuel-code directional spread tables (filled only on fuel-only
    /// mosaics); inline, so the fast path never touches the heap.
    per_fuel: [[f64; 8]; 14],
    /// Dijkstra frontier; drained by every run, capacity persists.
    heap: BinaryHeap<(Reverse<Time>, u32)>,
    /// The arrival raster of the most recent evaluation.
    out: IgnitionMap,
}

/// Scratch for the fully heterogeneous (per-cell) spread path, laid out as
/// structure-of-arrays: each terrain input is gathered into its own flat
/// raster-order buffer once per run, then the spread kernel walks the
/// buffers linearly. Keeping the inputs in separate contiguous arrays (and
/// hoisting the layer-presence branches out of the cell loop) is what lets
/// the compiler vectorize the gather loops and keeps the kernel loop free
/// of per-cell `Option` checks.
#[derive(Debug, Clone, Default)]
struct SpreadScratch {
    /// The output: per-cell directional spread tables.
    per_cell: Vec<[f64; 8]>,
    /// Effective fuel code per cell.
    codes: Vec<u8>,
    /// Slope steepness (`tan` of the slope angle) per cell.
    steep: Vec<f64>,
    /// Aspect azimuth (degrees) per cell.
    aspect: Vec<f64>,
    /// Midflame wind speed (ft/min) per cell.
    wind_fpm: Vec<f64>,
    /// Wind azimuth (degrees) per cell.
    wind_az: Vec<f64>,
}

impl SpreadScratch {
    /// Total capacity across the gather buffers (allocation tracking).
    fn gather_capacity(&self) -> usize {
        self.codes.capacity()
            + self.steep.capacity()
            + self.aspect.capacity()
            + self.wind_fpm.capacity()
            + self.wind_az.capacity()
    }
}

impl SimArena {
    /// An arena for `rows × cols` rasters, with the heap pre-reserved. The
    /// per-cell spread scratch is reserved lazily (one exact allocation per
    /// buffer on first use) so arenas on uniform and fuel-only terrains —
    /// where it is never touched — hold no dead capacity.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            spread: SpreadScratch::default(),
            per_fuel: [[0.0; 8]; 14],
            heap: BinaryHeap::with_capacity(rows * cols),
            out: IgnitionMap::unignited(rows, cols),
        }
    }

    /// Raster rows.
    pub fn rows(&self) -> usize {
        self.out.rows()
    }

    /// Raster columns.
    pub fn cols(&self) -> usize {
        self.out.cols()
    }

    /// The arrival map written by the last [`FireSim::simulate_arena`] run.
    pub fn map(&self) -> &IgnitionMap {
        &self.out
    }

    /// Current capacity of the per-cell spread cache (allocation tracking
    /// for the zero-allocation property tests).
    pub fn spread_capacity(&self) -> usize {
        self.spread.per_cell.capacity()
    }

    /// Total capacity of the flat SoA gather buffers feeding the per-cell
    /// spread kernel (allocation tracking for the zero-allocation tests).
    pub fn gather_capacity(&self) -> usize {
        self.spread.gather_capacity()
    }

    /// Current capacity of the Dijkstra heap (allocation tracking).
    pub fn heap_capacity(&self) -> usize {
        self.heap.capacity()
    }
}

/// How the engine resolves a cell's directional spread table for one run.
enum Tables<'a> {
    /// Uniform terrain: one table for the whole map.
    Uniform([f64; 8]),
    /// Fuel mosaic with globally uniform slope/aspect/wind: one table per
    /// fuel code, looked up through the fuel layer.
    PerFuel(&'a [[f64; 8]; 14], &'a [u8]),
    /// Fully heterogeneous terrain: one table per cell.
    PerCell(&'a [[f64; 8]]),
}

/// The fire propagation simulator for one terrain.
///
/// A `FireSim` is *immutable shared state*: the terrain and the precomputed
/// NFFL fuel beds both live behind `Arc`s, so cloning is two reference
/// bumps and workers never copy a raster. All mutable evaluation state
/// lives in a worker-owned [`SimArena`]; the allocation-free hot path is
/// [`FireSim::simulate_arena`].
#[derive(Debug, Clone)]
pub struct FireSim {
    terrain: Arc<Terrain>,
    beds: Arc<[FuelBed]>,
}

impl FireSim {
    /// Builds a simulator over `terrain` with the standard NFFL catalog
    /// (the fuel-bed table is process-wide shared, not rebuilt per call).
    pub fn new(terrain: Terrain) -> Self {
        Self::shared(Arc::new(terrain))
    }

    /// Builds a simulator over an already-shared terrain (no copy).
    pub fn shared(terrain: Arc<Terrain>) -> Self {
        Self {
            terrain,
            beds: standard_beds(),
        }
    }

    /// The terrain this simulator burns.
    pub fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// The shared terrain handle (cheap to clone into other simulators).
    pub fn terrain_shared(&self) -> Arc<Terrain> {
        Arc::clone(&self.terrain)
    }

    /// A fresh [`SimArena`] sized for this terrain.
    pub fn arena(&self) -> SimArena {
        SimArena::new(self.terrain.rows(), self.terrain.cols())
    }

    /// Directional spread rates for one cell under `scenario`.
    fn cell_spread(&self, row: usize, col: usize, scenario: &Scenario) -> SpreadVector {
        let fuel = self.terrain.fuel_at(row, col, scenario.model);
        let bed = &self.beds[fuel as usize];
        if !bed.burnable {
            return SpreadVector::no_spread();
        }
        let slope_deg = self.terrain.slope_at(row, col, scenario.slope_deg);
        let aspect = self.terrain.aspect_at(row, col, scenario.aspect_deg);
        let (wind_mph, wind_dir) =
            self.terrain
                .wind_at(row, col, scenario.wind_speed_mph, scenario.wind_dir_deg);
        let inputs = SpreadInputs {
            wind_fpm: wind_mph * crate::MPH_TO_FPM,
            wind_azimuth: wind_dir,
            slope_steepness: slope_deg.to_radians().tan(),
            aspect_azimuth: aspect,
        };
        wind_slope_max(bed, &scenario.moisture(), &inputs)
    }

    /// Directional table for fuel model `code` under the scenario's global
    /// slope/aspect/wind — the per-fuel cache entry. Bit-identical to
    /// [`FireSim::cell_spread`] on a terrain whose only override layer is
    /// the fuel mosaic.
    fn fuel_table(&self, code: usize, scenario: &Scenario, moisture: &MoistureRegime) -> [f64; 8] {
        let bed = &self.beds[code];
        if !bed.burnable {
            return [0.0; 8];
        }
        let inputs = SpreadInputs {
            wind_fpm: scenario.wind_speed_mph * crate::MPH_TO_FPM,
            wind_azimuth: scenario.wind_dir_deg,
            slope_steepness: scenario.slope_deg.to_radians().tan(),
            aspect_azimuth: scenario.aspect_deg,
        };
        wind_slope_max(bed, moisture, &inputs).compass_ros()
    }

    /// Fills the per-cell directional-spread tables for a fully
    /// heterogeneous terrain via the flat SoA path. Three phases:
    ///
    /// 1. **Gather** — resolve each override layer into its own contiguous
    ///    raster-order buffer, hoisting the layer-presence branch (and the
    ///    per-layer transforms: `tan`, mph→fpm, azimuth wrap) out of the
    ///    cell loop into simple vectorizable map/splat loops.
    /// 2. **Hoist** — [`no_wind_no_slope`] runs the fuel-particle loops and
    ///    depends only on (fuel code, moisture), so compute it once per
    ///    catalog model (≤ 14 calls) instead of once per cell.
    /// 3. **Kernel** — one linear pass over the flat buffers running only
    ///    the wind/slope half of the spread math per cell.
    ///
    /// Bit-identity with the old per-cell [`FireSim::cell_spread`] loop:
    /// the gathered inputs are computed by the same expressions the
    /// [`Terrain`] accessors use, `no_wind_no_slope` is pure in (bed,
    /// moisture), and [`wind_slope_max`] is exactly `no_wind_no_slope`
    /// composed with [`wind_slope_from_ros0`] — pinned by the arena
    /// regression suite.
    fn fill_per_cell(&self, scenario: &Scenario, scratch: &mut SpreadScratch) {
        let t = &*self.terrain;
        let n = t.rows() * t.cols();

        // Every buffer is cleared then refilled to exactly `n`; `reserve`
        // is a no-op for a warmed arena and one exact allocation on the
        // cold (`simulate_into`) path instead of doubling growth.
        let codes = &mut scratch.codes;
        codes.clear();
        codes.reserve(n);
        match t.fuel_layer() {
            Some(g) => codes.extend_from_slice(g.as_slice()),
            None => codes.resize(n, scenario.model),
        }

        let steep = &mut scratch.steep;
        steep.clear();
        steep.reserve(n);
        match t.slope_layer() {
            Some(g) => steep.extend(g.as_slice().iter().map(|&d| d.to_radians().tan())),
            None => steep.resize(n, scenario.slope_deg.to_radians().tan()),
        }

        let aspect = &mut scratch.aspect;
        aspect.clear();
        aspect.reserve(n);
        match t.aspect_layer() {
            Some(g) => aspect.extend_from_slice(g.as_slice()),
            None => aspect.resize(n, scenario.aspect_deg),
        }

        let wind_fpm = &mut scratch.wind_fpm;
        let wind_az = &mut scratch.wind_az;
        wind_fpm.clear();
        wind_az.clear();
        wind_fpm.reserve(n);
        wind_az.reserve(n);
        match t.wind_layer() {
            Some((factor, offset)) => {
                wind_fpm.extend(
                    factor
                        .as_slice()
                        .iter()
                        .map(|&f| (scenario.wind_speed_mph * f) * crate::MPH_TO_FPM),
                );
                wind_az.extend(
                    offset
                        .as_slice()
                        .iter()
                        .map(|&o| normalize_azimuth(scenario.wind_dir_deg + o)),
                );
            }
            None => {
                wind_fpm.resize(n, scenario.wind_speed_mph * crate::MPH_TO_FPM);
                wind_az.resize(n, scenario.wind_dir_deg);
            }
        }

        let moisture = scenario.moisture();
        let mut base = [(0.0f64, 0.0f64); 14];
        for (bed, slot) in self.beds.iter().zip(base.iter_mut()) {
            *slot = no_wind_no_slope(bed, &moisture);
        }

        let per_cell = &mut scratch.per_cell;
        per_cell.clear();
        per_cell.reserve(n);
        for idx in 0..n {
            let code = codes[idx] as usize;
            // Unburnable beds hoist to `(0.0, 0.0)`, so the `ros0` guard
            // covers both the unburnable and the extinguished case — the
            // same two paths `cell_spread` resolves to `no_spread`.
            let (ros0, rx_int) = base[code];
            let v = if ros0 <= SMIDGEN {
                SpreadVector::no_spread()
            } else {
                let inputs = SpreadInputs {
                    wind_fpm: wind_fpm[idx],
                    wind_azimuth: wind_az[idx],
                    slope_steepness: steep[idx],
                    aspect_azimuth: aspect[idx],
                };
                wind_slope_from_ros0(&self.beds[code], ros0, rx_int, &inputs)
            };
            per_cell.push(v.compass_ros());
        }
    }

    /// Simulates fire growth from `initial` (cells burning at `t0`) for
    /// `duration` minutes, returning the ignition-time map. Cells the fire
    /// does not reach within the horizon hold [`landscape::UNIGNITED`];
    /// initial cells hold `t0`.
    ///
    /// # Panics
    /// Panics when `initial` does not match the terrain shape, `t0` is
    /// negative/non-finite or `duration` is not positive.
    pub fn simulate(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
    ) -> IgnitionMap {
        let mut out = IgnitionMap::unignited(self.terrain.rows(), self.terrain.cols());
        self.simulate_into(scenario, initial, t0, duration, &mut out);
        out
    }

    /// Output-reusing variant of [`FireSim::simulate`]: `out` is cleared
    /// and refilled, keeping its buffer. Spread-cache and heap scratch are
    /// still allocated per call — workers that evaluate in a loop should
    /// hold a [`SimArena`] and call [`FireSim::simulate_arena`] instead.
    pub fn simulate_into(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        out: &mut IgnitionMap,
    ) {
        let mut spread = SpreadScratch::default();
        let mut per_fuel = [[0.0; 8]; 14];
        let mut heap = BinaryHeap::new();
        self.run_dijkstra(
            scenario,
            initial,
            t0,
            duration,
            &mut spread,
            &mut per_fuel,
            &mut heap,
            out,
        );
    }

    /// The allocation-free hot path: simulates into the arena's buffers and
    /// returns the arrival map. The arena's buffers persist at their
    /// high-water mark, so repeated calls stop allocating once that mark
    /// covers the scenarios being evaluated (the property the
    /// `arena_is_allocation_free_in_steady_state` test pins; see
    /// [`SimArena`] for the heap caveat).
    ///
    /// # Panics
    /// Panics when the arena or `initial` does not match the terrain shape,
    /// `t0` is negative/non-finite or `duration` is not positive.
    pub fn simulate_arena<'a>(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        arena: &'a mut SimArena,
    ) -> &'a IgnitionMap {
        let SimArena {
            spread,
            per_fuel,
            heap,
            out,
        } = &mut *arena;
        self.run_dijkstra(scenario, initial, t0, duration, spread, per_fuel, heap, out);
        &arena.out
    }

    /// The Dijkstra minimum-travel-time sweep over reusable buffers; the
    /// single implementation behind every `simulate*` entry point, so all
    /// of them are bit-identical by construction.
    #[allow(clippy::too_many_arguments)]
    fn run_dijkstra(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        spread: &mut SpreadScratch,
        per_fuel: &mut [[f64; 8]; 14],
        heap: &mut BinaryHeap<(Reverse<Time>, u32)>,
        out: &mut IgnitionMap,
    ) {
        let rows = self.terrain.rows();
        let cols = self.terrain.cols();
        assert_eq!(
            (initial.rows(), initial.cols()),
            (rows, cols),
            "initial fire line shape mismatch"
        );
        assert!(
            t0.is_finite() && t0 >= 0.0,
            "t0 must be a non-negative instant"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be positive"
        );
        assert_eq!(
            (out.rows(), out.cols()),
            (rows, cols),
            "output map shape mismatch"
        );

        out.clear();
        heap.clear();
        let t_end = t0 + duration;
        let cell_ft = self.terrain.cell_size_ft();

        // Resolve the spread-table mode once per run. Uniform terrains share
        // one table; fuel-only mosaics share one table per fuel code (≤ 14
        // spread computations instead of rows × cols); anything else gets
        // the per-cell cache in the arena.
        let tables: Tables<'_> = if !self.terrain.has_overrides() {
            Tables::Uniform(self.cell_spread(0, 0, scenario).compass_ros())
        } else if self.terrain.fuel_is_only_override() {
            let moisture = scenario.moisture();
            for (code, table) in per_fuel.iter_mut().enumerate() {
                *table = self.fuel_table(code, scenario, &moisture);
            }
            let fuel = self
                .terrain
                .fuel_layer()
                .expect("fuel_is_only_override implies a fuel layer")
                .as_slice();
            Tables::PerFuel(per_fuel, fuel)
        } else {
            self.fill_per_cell(scenario, spread);
            Tables::PerCell(&spread.per_cell)
        };
        let ros_of = |idx: usize| -> &[f64; 8] {
            match &tables {
                Tables::Uniform(table) => table,
                Tables::PerFuel(by_code, fuel) => &by_code[fuel[idx] as usize],
                Tables::PerCell(cells) => &cells[idx],
            }
        };
        // A cell can ignite iff its own bed can burn (no-fuel cells are
        // firebreaks). With no fuel layer burnability is global.
        let fuel_slice = self.terrain.fuel_layer().map(|g| g.as_slice());
        // Only consult the scenario's model when no fuel layer overrides it
        // (a layered terrain makes the global model irrelevant, and must not
        // panic on an out-of-catalog value it never uses).
        let scenario_burnable = fuel_slice.is_none() && self.beds[scenario.model as usize].burnable;
        let burnable_at = |idx: usize| -> bool {
            match fuel_slice {
                Some(f) => self.beds[f[idx] as usize].burnable,
                None => scenario_burnable,
            }
        };

        for (idx, &lit) in initial.mask().as_slice().iter().enumerate() {
            if !lit || !burnable_at(idx) {
                continue;
            }
            out.set_time(idx / cols, idx % cols, t0);
            heap.push((Reverse(Time(t0)), idx as u32));
        }

        while let Some((Reverse(Time(t)), idx)) = heap.pop() {
            let idx = idx as usize;
            let (r, c) = (idx / cols, idx % cols);
            if t > out.time(r, c) + SMIDGEN {
                continue; // stale entry
            }
            let table = ros_of(idx);
            for (dir, &(dr, dc, dist_factor)) in landscape::NEIGHBOUR_OFFSETS.iter().enumerate() {
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nc < 0 || nr as usize >= rows || nc as usize >= cols {
                    continue;
                }
                let (nr, nc) = (nr as usize, nc as usize);
                let ros = table[dir];
                if ros <= SMIDGEN {
                    continue;
                }
                let arrival = t + dist_factor * cell_ft / ros;
                if arrival > t_end || arrival >= out.time(nr, nc) - SMIDGEN {
                    continue;
                }
                let nidx = nr * cols + nc;
                if !burnable_at(nidx) {
                    continue;
                }
                out.set_time(nr, nc, arrival);
                heap.push((Reverse(Time(arrival)), nidx as u32));
            }
        }
    }

    /// Convenience: simulates and returns the fire line at the end of the
    /// horizon (burned cells at `t0 + duration`).
    pub fn simulate_fire_line(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
    ) -> FireLine {
        self.simulate(scenario, initial, t0, duration)
            .fire_line_at(t0 + duration)
    }

    /// Maximum spread rate (ft/min) of `scenario` on a uniform cell of this
    /// terrain — exposed for workload sizing in the benches.
    pub fn max_ros(&self, scenario: &Scenario) -> f64 {
        self.cell_spread(0, 0, scenario).ros_max
    }
}

/// Builds the single-cell ignition used by most examples: the map centre
/// burning at `t = 0`.
pub fn centre_ignition(rows: usize, cols: usize) -> FireLine {
    FireLine::from_cells(rows, cols, &[(rows / 2, cols / 2)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use landscape::{Grid, UNIGNITED};

    fn flat_sim(n: usize) -> FireSim {
        FireSim::new(Terrain::uniform(n, n, 100.0))
    }

    fn calm_scenario() -> Scenario {
        Scenario {
            wind_speed_mph: 0.0,
            slope_deg: 0.0,
            ..Scenario::reference()
        }
    }

    #[test]
    fn fire_grows_from_ignition_point() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 300.0);
        assert_eq!(map.time(10, 10), 0.0);
        assert!(
            map.burned_count_at(300.0) > 1,
            "fire must spread beyond the ignition"
        );
    }

    #[test]
    fn calm_flat_fire_is_symmetric() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 500.0);
        for d in 1..=5usize {
            let north = map.time(10 - d, 10);
            let south = map.time(10 + d, 10);
            let east = map.time(10, 10 + d);
            let west = map.time(10, 10 - d);
            assert!((north - south).abs() < 1e-9);
            assert!((east - west).abs() < 1e-9);
            assert!((north - east).abs() < 1e-9);
        }
    }

    #[test]
    fn ignition_times_increase_with_distance() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 2000.0);
        let mut prev = 0.0;
        for d in 1..=8usize {
            let t = map.time(10, 10 + d);
            assert!(t > prev, "time must increase along a ray");
            prev = t;
        }
    }

    #[test]
    fn wind_skews_fire_downwind() {
        let sim = flat_sim(31);
        let scenario = Scenario {
            wind_speed_mph: 10.0,
            wind_dir_deg: 90.0,
            ..calm_scenario()
        };
        let map = sim.simulate(&scenario, &centre_ignition(31, 31), 0.0, 120.0);
        // Wind blows east: the eastern cell ignites earlier than the western.
        let east = map.time(15, 20);
        let west = map.time(15, 10);
        assert!(east < west, "east {east} < west {west} expected");
    }

    #[test]
    fn slope_skews_fire_upslope() {
        let sim = flat_sim(31);
        // Aspect 180° (south-facing) → upslope north (decreasing row).
        let scenario = Scenario {
            slope_deg: 30.0,
            aspect_deg: 180.0,
            ..calm_scenario()
        };
        let map = sim.simulate(&scenario, &centre_ignition(31, 31), 0.0, 300.0);
        let north = map.time(10, 15);
        let south = map.time(20, 15);
        assert!(north < south, "north {north} < south {south} expected");
    }

    #[test]
    fn horizon_bounds_ignition_times() {
        let sim = flat_sim(41);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(41, 41), 0.0, 60.0);
        for ((_, _), &t) in map.grid().iter_cells() {
            assert!(t == UNIGNITED || t <= 60.0 + 1e-9);
        }
    }

    #[test]
    fn longer_horizon_extends_shorter_map() {
        let sim = flat_sim(31);
        let s = calm_scenario();
        let short = sim.simulate(&s, &centre_ignition(31, 31), 0.0, 100.0);
        let long = sim.simulate(&s, &centre_ignition(31, 31), 0.0, 300.0);
        for r in 0..31 {
            for c in 0..31 {
                if short.time(r, c) != UNIGNITED {
                    assert!((short.time(r, c) - long.time(r, c)).abs() < 1e-9);
                }
            }
        }
        assert!(long.burned_count_at(300.0) > short.burned_count_at(100.0));
    }

    #[test]
    fn t0_offsets_all_times() {
        let sim = flat_sim(21);
        let s = calm_scenario();
        let at0 = sim.simulate(&s, &centre_ignition(21, 21), 0.0, 200.0);
        let at50 = sim.simulate(&s, &centre_ignition(21, 21), 50.0, 200.0);
        for r in 0..21 {
            for c in 0..21 {
                if at0.time(r, c) != UNIGNITED {
                    assert!((at50.time(r, c) - (at0.time(r, c) + 50.0)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn firebreak_stops_spread() {
        // A vertical stripe of no-fuel cells splits the map; fire ignited on
        // the left must never reach the right side.
        let mut fuel = Grid::filled(15, 15, 1u8);
        for r in 0..15 {
            fuel.set(r, 7, 0);
        }
        let sim = FireSim::new(Terrain::uniform(15, 15, 100.0).with_fuel(fuel));
        let ignition = FireLine::from_cells(15, 15, &[(7, 2)]);
        let map = sim.simulate(&calm_scenario(), &ignition, 0.0, 1e5);
        for r in 0..15 {
            assert_eq!(map.time(r, 7), UNIGNITED, "firebreak cell ({r},7) ignited");
            for c in 8..15 {
                assert_eq!(
                    map.time(r, c),
                    UNIGNITED,
                    "cell ({r},{c}) behind the break ignited"
                );
            }
        }
        assert!(map.burned_count_at(1e5) > 10);
    }

    #[test]
    fn damp_fuel_never_ignites_neighbours() {
        let sim = flat_sim(11);
        let scenario = Scenario {
            m1_pct: 30.0,
            m10_pct: 30.0,
            m100_pct: 30.0,
            ..calm_scenario()
        }; // far beyond model 1 extinction (12 %)
        let map = sim.simulate(&scenario, &centre_ignition(11, 11), 0.0, 1e6);
        assert_eq!(
            map.burned_count_at(1e6),
            1,
            "only the ignition cell may burn"
        );
    }

    #[test]
    fn unburnable_ignition_cell_is_ignored() {
        let mut fuel = Grid::filled(5, 5, 1u8);
        fuel.set(2, 2, 0);
        let sim = FireSim::new(Terrain::uniform(5, 5, 100.0).with_fuel(fuel));
        let map = sim.simulate(&calm_scenario(), &centre_ignition(5, 5), 0.0, 1e4);
        assert_eq!(map.burned_count_at(1e4), 0);
    }

    #[test]
    fn simulate_into_reuses_buffer_and_matches() {
        let sim = flat_sim(15);
        let s = calm_scenario();
        let fresh = sim.simulate(&s, &centre_ignition(15, 15), 0.0, 150.0);
        let mut reused = IgnitionMap::unignited(15, 15);
        // Pre-pollute to prove it clears.
        reused.set_time(0, 0, 1.0);
        sim.simulate_into(&s, &centre_ignition(15, 15), 0.0, 150.0, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn arena_matches_simulate_and_is_reusable() {
        let mut fuel = Grid::filled(17, 17, 1u8);
        for r in 0..17 {
            fuel.set(r, 5, 4);
            fuel.set(r, 11, 0);
        }
        let sim = FireSim::new(Terrain::uniform(17, 17, 100.0).with_fuel(fuel));
        let s = Scenario {
            wind_speed_mph: 9.0,
            ..calm_scenario()
        };
        let mut arena = sim.arena();
        for (t0, dur) in [(0.0, 120.0), (10.0, 300.0), (0.0, 50.0)] {
            let fresh = sim.simulate(&s, &centre_ignition(17, 17), t0, dur);
            let via_arena = sim.simulate_arena(&s, &centre_ignition(17, 17), t0, dur, &mut arena);
            assert_eq!(&fresh, via_arena, "t0={t0} dur={dur}");
        }
    }

    #[test]
    fn arena_is_allocation_free_in_steady_state() {
        // Two table modes: a slope terrain (per-cell path, the worst case
        // for buffer growth) and a fuel-only mosaic (per-fuel path, whose
        // tables live inline in the arena). After a warm-up call,
        // capacities must not move on either.
        let n = 31usize;
        let slope = Grid::from_fn(n, n, |r, c| ((r + c) % 30) as f64);
        let fuel = Grid::from_fn(n, n, |r, c| [1u8, 2, 4][(r + c) % 3]);
        let sims = [
            FireSim::new(Terrain::uniform(n, n, 100.0).with_slope(slope)),
            FireSim::new(Terrain::uniform(n, n, 100.0).with_fuel(fuel)),
        ];
        let s = calm_scenario();
        for sim in &sims {
            let mut arena = sim.arena();
            sim.simulate_arena(&s, &centre_ignition(n, n), 0.0, 400.0, &mut arena);
            let spread_cap = arena.spread_capacity();
            let gather_cap = arena.gather_capacity();
            let heap_cap = arena.heap_capacity();
            for i in 0..10 {
                sim.simulate_arena(
                    &s,
                    &centre_ignition(n, n),
                    0.0,
                    400.0 + i as f64,
                    &mut arena,
                );
                assert_eq!(arena.spread_capacity(), spread_cap, "spread cache grew");
                assert_eq!(arena.gather_capacity(), gather_cap, "gather buffers grew");
                assert_eq!(arena.heap_capacity(), heap_cap, "heap storage grew");
            }
        }
    }

    #[test]
    fn out_of_catalog_model_is_ignored_when_fuel_layer_overrides_it() {
        // With a fuel layer the scenario's global model is never consulted,
        // so even an out-of-catalog value must not panic.
        let fuel = Grid::filled(7, 7, 1u8);
        let sim = FireSim::new(Terrain::uniform(7, 7, 100.0).with_fuel(fuel));
        let s = Scenario {
            model: 99,
            ..calm_scenario()
        };
        let map = sim.simulate(&s, &centre_ignition(7, 7), 0.0, 120.0);
        assert!(map.burned_count_at(120.0) > 1, "layered fuel must burn");
    }

    #[test]
    fn cloned_sim_shares_terrain() {
        let sim = FireSim::new(Terrain::uniform(9, 9, 100.0));
        let clone = sim.clone();
        assert!(Arc::ptr_eq(&sim.terrain_shared(), &clone.terrain_shared()));
    }

    #[test]
    fn wind_layer_changes_propagation() {
        let n = 21usize;
        // Wind dead in the west half, doubled in the east half.
        let factor = Grid::from_fn(n, n, |_, c| if c < n / 2 { 0.0 } else { 2.0 });
        let offset = Grid::filled(n, n, 0.0);
        let sim = FireSim::new(Terrain::uniform(n, n, 100.0).with_wind(factor, offset));
        let s = Scenario {
            wind_speed_mph: 12.0,
            wind_dir_deg: 90.0,
            ..calm_scenario()
        };
        let map = sim.simulate(&s, &centre_ignition(n, n), 0.0, 60.0);
        let east = map.time(n / 2, n / 2 + 4);
        let west = map.time(n / 2, n / 2 - 4);
        assert!(
            east < west,
            "downwind east cell must ignite first ({east} vs {west})"
        );
    }

    #[test]
    fn fire_line_convenience_matches_map() {
        let sim = flat_sim(15);
        let s = calm_scenario();
        let map = sim.simulate(&s, &centre_ignition(15, 15), 0.0, 150.0);
        let fl = sim.simulate_fire_line(&s, &centre_ignition(15, 15), 0.0, 150.0);
        assert_eq!(fl, map.fire_line_at(150.0));
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let sim = flat_sim(5);
        let _ = sim.simulate(&calm_scenario(), &centre_ignition(5, 5), 0.0, 0.0);
    }
}
