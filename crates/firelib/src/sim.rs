//! Cell-to-cell fire propagation — the `FS` block of Figs. 1–3.
//!
//! fireLib propagates fire over a raster of square cells by repeatedly
//! sweeping the map and assigning each cell the earliest arrival time from
//! any burning neighbour until a fixpoint is reached. Because every
//! cell-to-cell traversal time is non-negative and fixed for a given
//! scenario, that fixpoint is exactly the shortest-path (minimum travel
//! time) solution, which we compute directly with a shortest-path sweep —
//! same result, deterministic, and frontier-proportional instead of
//! repeated full-map sweeps.
//!
//! Two kernels implement the sweep:
//!
//! * [`Kernel::Heap`] — the reference implementation: a classic Dijkstra
//!   over a `BinaryHeap<(Reverse<Time>, u32)>` touching the whole raster
//!   (full gather, full output reset). Simple, kept as the oracle every
//!   other path is pinned against.
//! * [`Kernel::Bucket`] — the landscape-scale hot path: a monotone
//!   bucket-queue (Dial-style) wavefront sweep with **active-front
//!   bounding**. Arrival times live in `[t0, t0 + duration]`, so the
//!   frontier is kept in an array of buckets keyed by quantized arrival
//!   time (O(1) push, cache-friendly per-bucket drains); the raster keeps
//!   exact `f64` arrival times — buckets only order the frontier. Spread
//!   inputs are gathered and the output raster reset only inside the
//!   window the fire can actually reach within the horizon, so one
//!   evaluation costs proportional-to-burned-area instead of O(rows×cols).
//!
//! The two kernels are **bit-identical by construction**: within a bucket
//! the frontier is drained through a mini-heap ordered exactly like the
//! global heap's `(Reverse<Time>, u32)` tuple order (ascending time, ties
//! by descending cell index), and every traversal cost is positive, so an
//! entry pushed while draining bucket `k` can never belong to a bucket
//! `< k` (quantization is monotone in the arrival time). The realized pop
//! sequence is therefore the same strict total order the binary heap
//! realizes, which makes the whole execution — every relaxation decision,
//! every `SMIDGEN`-tolerance comparison, every raster write — literally
//! identical. The `kernel_equivalence` property suite pins this with exact
//! `f64` raster comparisons.
//!
//! The traversal time of the edge from a burning cell to a neighbour is
//! `distance / ros_source(azimuth)`, i.e. the fire crosses the source cell's
//! fuel towards the neighbour, matching fireLib's per-cell spread
//! computation. Cells whose own fuel bed cannot burn are never ignited.

use crate::combustion::{standard_beds, FuelBed};
use crate::moisture::MoistureRegime;
use crate::scenario::Scenario;
use crate::spread::{
    no_wind_no_slope, wind_slope_from_ros0, wind_slope_max, SpreadInputs, SpreadVector,
};
use crate::terrain::Terrain;
use crate::SMIDGEN;
use landscape::geometry::normalize_azimuth;
use landscape::{FireLine, IgnitionMap, UNIGNITED};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Total-ordering wrapper for ignition times, ordered by
/// [`f64::total_cmp`] — branch-free and panic-free (times are never NaN by
/// construction, so IEEE total order and numeric order coincide here).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Which propagation kernel a `simulate_arena_kernel` call runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Reference Dijkstra over a binary heap, full-raster gather and reset.
    Heap,
    /// Monotone bucket-queue wavefront sweep with active-front bounding —
    /// the default hot path; bit-identical to [`Kernel::Heap`].
    Bucket,
    /// Multi-core tiled wavefront: the bucket queue is processed in
    /// epoch-synchronized bucket levels, each epoch's pops partitioned into
    /// spatial tiles and drained concurrently into per-tile candidate
    /// outboxes; a sequential merge then applies every candidate in the
    /// exact global pop order, so the raster stays bit-identical to
    /// [`Kernel::Heap`] (see [`FireSim::run_tiled`] for the argument).
    Tiled {
        /// Spatial tile edge in cells (window partition granularity);
        /// must be non-zero.
        tile: usize,
        /// Drain worker threads; `0` means auto
        /// (`std::thread::available_parallelism`).
        workers: usize,
    },
}

/// Default spatial tile edge for [`Kernel::Tiled`] when a spec string does
/// not pin one: big enough that a tile's pops share cache lines, small
/// enough that an XL fire front spans many tiles.
pub const DEFAULT_TILE: usize = 128;

impl Kernel {
    /// The tiled kernel with the default tile size and auto worker count —
    /// the spelling `"tiled"` parses to.
    pub fn tiled_auto() -> Self {
        Kernel::Tiled {
            tile: DEFAULT_TILE,
            workers: 0,
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Kernel::Heap => write!(f, "heap"),
            Kernel::Bucket => write!(f, "bucket"),
            Kernel::Tiled { tile, workers: 0 } => write!(f, "tiled:{tile}"),
            Kernel::Tiled { tile, workers } => write!(f, "tiled:{tile}x{workers}"),
        }
    }
}

/// Error from parsing a [`Kernel`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError(String);

impl std::fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid kernel '{}' (expected heap | bucket | tiled[:TILE[xWORKERS]])",
            self.0
        )
    }
}

impl std::error::Error for ParseKernelError {}

impl std::str::FromStr for Kernel {
    type Err = ParseKernelError;

    /// Parses `heap`, `bucket`, `tiled`, `tiled:TILE` and
    /// `tiled:TILExWORKERS` (`WORKERS = 0` meaning auto), matching the
    /// `Display` form so kernel names printed in reports round-trip back
    /// through configs.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let spec = s.trim();
        match spec.to_ascii_lowercase().as_str() {
            "heap" => return Ok(Kernel::Heap),
            "bucket" => return Ok(Kernel::Bucket),
            "tiled" => return Ok(Kernel::tiled_auto()),
            _ => {}
        }
        let args = spec
            .strip_prefix("tiled:")
            .ok_or_else(|| ParseKernelError(s.into()))?;
        let (tile_s, workers_s) = match args.split_once('x') {
            Some((t, w)) => (t, Some(w)),
            None => (args, None),
        };
        let tile: usize = tile_s
            .trim()
            .parse()
            .map_err(|_| ParseKernelError(s.into()))?;
        if tile == 0 {
            return Err(ParseKernelError(s.into()));
        }
        let workers: usize = match workers_s {
            Some(w) => w.trim().parse().map_err(|_| ParseKernelError(s.into()))?,
            None => 0,
        };
        Ok(Kernel::Tiled { tile, workers })
    }
}

/// Number of arrival-time buckets the monotone queue quantizes the horizon
/// into. More buckets → smaller per-bucket mini-heaps; the array itself is
/// reset in O(`BUCKETS`) per run, which is negligible against any real
/// sweep.
const BUCKETS: usize = 2048;

/// Minimum epoch size (frontier entries) the tiled kernel aims for when it
/// bundles consecutive bucket levels into one drain/merge epoch: big
/// enough to amortize the scoped fork/join over real relaxation work,
/// small enough that in-epoch cascades (arrivals landing inside the epoch's
/// own bucket span, which the sequential merge must relax itself) stay a
/// small fraction of the pops.
const TILE_GRAIN: usize = 4096;

/// Epochs smaller than this drain inline on the calling thread — forking
/// workers for a handful of pops costs more than it buys.
const TILE_INLINE: usize = 1024;

/// Monotone bucket queue (Dial's algorithm) over the arrival-time horizon
/// `[t0, t0 + duration]`, with one twist that buys exactness: the bucket
/// currently being drained is kept as a binary mini-heap ordered by the
/// *same* total order the reference `BinaryHeap<(Reverse<Time>, u32)>`
/// pops in (ascending time via `total_cmp`, ties by descending index).
/// Future buckets are plain unsorted `Vec`s — O(1) push — and are
/// heapified once when the drain cursor reaches them.
///
/// Every traversal cost is positive, so a push performed while draining
/// bucket `k` has an arrival time ≥ the time of some entry in bucket `k`,
/// and quantization (`floor((t - t0) · inv_delta)`) is monotone in `t`
/// under f64 rounding (subtraction and multiplication by a positive
/// constant are monotone). Pushes therefore never target a past bucket,
/// and the realized global pop order is the strict `(time, index)` total
/// order — identical to the reference heap's, entry for entry.
#[derive(Debug, Clone, Default)]
struct BucketQueue {
    /// Future frontier entries, bucketed by quantized arrival time.
    buckets: Vec<Vec<(f64, u32)>>,
    /// The bucket currently being drained, as a mini-heap in pop order.
    cur: Vec<(f64, u32)>,
    /// Index of the bucket `cur` was filled from; pushes quantizing to
    /// `<= cursor` (only possible for `== cursor`) join the mini-heap.
    cursor: usize,
    /// Entries currently queued across `cur` and all future buckets.
    len: usize,
    base: f64,
    inv_delta: f64,
}

impl BucketQueue {
    /// `true` when `a` pops before `b` under the reference heap's order:
    /// smaller time first, equal times broken by larger cell index.
    #[inline]
    fn before(a: (f64, u32), b: (f64, u32)) -> bool {
        match a.0.total_cmp(&b.0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.1 > b.1,
        }
    }

    /// Prepares the queue for one run over `[t0, t0 + duration]`. Bucket
    /// `Vec`s keep their capacity across runs (the allocation-free
    /// steady-state property).
    fn reset(&mut self, t0: f64, duration: f64) {
        if self.buckets.len() != BUCKETS {
            self.buckets.resize_with(BUCKETS, Vec::new);
        }
        for b in &mut self.buckets {
            b.clear();
        }
        self.cur.clear();
        self.cursor = 0;
        self.len = 0;
        self.base = t0;
        self.inv_delta = (BUCKETS - 1) as f64 / duration;
    }

    #[inline]
    fn bucket_of(&self, t: f64) -> usize {
        // t >= base always (seeds carry t0, relaxations only increase), so
        // the cast truncates a non-negative value; clamp covers t == t_end.
        (((t - self.base) * self.inv_delta) as usize).min(BUCKETS - 1)
    }

    // lint: no_alloc
    #[inline]
    fn push(&mut self, t: f64, idx: u32) {
        self.len += 1;
        let b = self.bucket_of(t);
        if b <= self.cursor {
            self.cur.push((t, idx));
            let mut i = self.cur.len() - 1;
            while i > 0 {
                let p = (i - 1) / 2;
                if Self::before(self.cur[i], self.cur[p]) {
                    self.cur.swap(i, p);
                    i = p;
                } else {
                    break;
                }
            }
        } else {
            self.buckets[b].push((t, idx));
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.cur.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let mut best = l;
            let r = l + 1;
            if r < n && Self::before(self.cur[r], self.cur[l]) {
                best = r;
            }
            if Self::before(self.cur[best], self.cur[i]) {
                self.cur.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
    }

    // lint: no_alloc
    fn pop(&mut self) -> Option<(f64, u32)> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            loop {
                // len > 0 and every queued entry lives in cur or a bucket
                // > cursor, so a non-empty bucket exists ahead of the cursor.
                self.cursor += 1;
                debug_assert!(self.cursor < BUCKETS, "bucket queue lost entries");
                if !self.buckets[self.cursor].is_empty() {
                    // Move elements out rather than swap the `Vec`s so every
                    // bucket keeps its own high-water capacity (swapping
                    // shuffles capacities between slots and defeats the
                    // steady-state allocation-free property).
                    self.cur.append(&mut self.buckets[self.cursor]);
                    break;
                }
            }
            for i in (0..self.cur.len() / 2).rev() {
                self.sift_down(i);
            }
        }
        self.len -= 1;
        let top = self.cur[0];
        // audit: allow(panic) — pop() is only entered with len > 0, and the refill above just moved a bucket into cur
        let last = self.cur.pop().expect("cur is non-empty");
        if !self.cur.is_empty() {
            self.cur[0] = last;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Tiled-kernel entry point: queues `(t, idx)` for a *future* epoch
    /// without touching the drain mini-heap. The tiled kernel only calls
    /// this for arrivals quantizing past the current epoch's last bucket
    /// (in-epoch arrivals go to the merge cascade instead), so the entry
    /// always lands at or ahead of the cursor.
    // lint: no_alloc
    #[inline]
    fn stage(&mut self, t: f64, idx: u32) {
        let b = self.bucket_of(t);
        debug_assert!(b >= self.cursor, "staged entry targets a drained epoch");
        self.len += 1;
        self.buckets[b].push((t, idx));
    }

    /// Tiled-kernel epoch extraction: moves every entry of the next run of
    /// non-empty buckets into `into` (unordered) until at least `grain`
    /// entries are taken or the queue empties, and returns the index of the
    /// last bucket taken. Entries staged afterwards must quantize past that
    /// bucket. Returns `None` when the queue is empty.
    // lint: no_alloc
    fn take_levels(&mut self, grain: usize, into: &mut Vec<(f64, u32)>) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        into.clear();
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
            debug_assert!(self.cursor < BUCKETS, "bucket queue lost entries");
        }
        let mut k = self.cursor;
        loop {
            let taken = self.buckets[k].len();
            into.append(&mut self.buckets[k]);
            self.len -= taken;
            if into.len() >= grain || self.len == 0 || k + 1 == BUCKETS {
                break;
            }
            k += 1;
        }
        self.cursor = k + 1;
        Some(k)
    }

    /// Heap bytes currently held across all bucket storage.
    fn bytes(&self) -> usize {
        let entry = std::mem::size_of::<(f64, u32)>();
        let entries: usize =
            self.cur.capacity() + self.buckets.iter().map(Vec::capacity).sum::<usize>();
        entries * entry + self.buckets.capacity() * std::mem::size_of::<Vec<(f64, u32)>>()
    }
}

/// The rectangular active-front window of one bucket-kernel run: the
/// ignition bounding box expanded by the farthest distance the fire can
/// travel within the horizon (Chebyshev metric — every neighbour step,
/// diagonal included, advances at most one Chebyshev unit and costs at
/// least `cell_ft / ros_cap` minutes).
#[derive(Debug, Clone, Copy)]
struct Window {
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
}

impl Window {
    #[inline]
    fn contains(&self, r: usize, c: usize) -> bool {
        r.wrapping_sub(self.r0) < self.rows && c.wrapping_sub(self.c0) < self.cols
    }

    /// Row-major index into window-local storage.
    #[inline]
    fn local(&self, r: usize, c: usize) -> usize {
        (r - self.r0) * self.cols + (c - self.c0)
    }

    fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// Which cells of the arena's arrival raster may differ from `UNIGNITED`
/// after the previous run — the next run resets exactly this set instead
/// of the whole raster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dirty {
    /// Fresh raster (or already reset): all cells hold `UNIGNITED`.
    Clean,
    /// Unknown write set (reference kernel ran): full reset required.
    All,
    /// Bucket run: writes confined to the per-row spans recorded in
    /// `span_lo`/`span_hi` for `rows` window rows starting at `r0`, plus
    /// the explicit `stray` overflow list.
    Spans { r0: usize, rows: usize },
}

/// Restores the all-`UNIGNITED` invariant of `out` by resetting exactly
/// what the previous run wrote: nothing for a fresh raster, the recorded
/// per-row spans (plus strays) after a span-tracked run, or a full clear
/// after a reference-kernel run. Shared by the bucket and tiled kernels.
// lint: no_alloc
fn reset_raster(
    dirty: &mut Dirty,
    out: &mut IgnitionMap,
    span_lo: &[u32],
    span_hi: &[u32],
    stray: &mut Vec<u32>,
    cols: usize,
) {
    match *dirty {
        Dirty::Clean => {}
        Dirty::All => out.clear(),
        Dirty::Spans { r0, rows: drows } => {
            let slice = out.grid_mut().as_mut_slice();
            for (i, (&lo, &hi)) in span_lo.iter().zip(span_hi.iter()).enumerate().take(drows) {
                if lo <= hi {
                    let off = (r0 + i) * cols;
                    slice[off + lo as usize..=off + hi as usize].fill(UNIGNITED);
                }
            }
            for &sidx in stray.iter() {
                slice[sidx as usize] = UNIGNITED;
            }
        }
    }
    stray.clear();
    *dirty = Dirty::Clean;
}

/// One tile's share of a tiled-kernel epoch drain: relaxes the tile's pops
/// (already in reference pop order) against a *read-only* snapshot of the
/// arrival raster, writing surviving candidates into the tile outbox.
///
/// Two pre-filters keep the outbox small, and both are sound because
/// arrival times only ever decrease: an entry stale *now* (`t >
/// out[idx] + SMIDGEN`) can never become live by apply time, and a
/// candidate already beaten by the raster (`arrival >= out[n] - SMIDGEN`)
/// only falls further behind as `out[n]` shrinks. The converse directions
/// are NOT stable, which is why the sequential merge re-checks both
/// conditions against the live raster before every write.
// lint: no_alloc
#[allow(clippy::too_many_arguments)]
fn drain_tile(
    ts: &mut TileScratch,
    entries: &[(u32, f64, u32)],
    out: &IgnitionMap,
    rows: usize,
    cols: usize,
    cell_ft: f64,
    t_end: f64,
    resolve_table: &impl Fn(usize, usize, usize) -> [f64; 8],
    burnable_at: &impl Fn(usize) -> bool,
) {
    ts.head = 0;
    ts.groups.clear();
    for &(_, t, idx) in entries {
        let ci = idx as usize;
        let (r, c) = (ci / cols, ci % cols);
        if t > out.time(r, c) + SMIDGEN {
            continue; // stale entry — stays stale, safe to drop here
        }
        let table = resolve_table(ci, r, c);
        let mut g = PopGroup {
            t,
            idx,
            len: 0,
            cand: [(0.0, 0); 8],
        };
        for (dir, &(dr, dc, dist_factor)) in landscape::NEIGHBOUR_OFFSETS.iter().enumerate() {
            let (nr, nc) = (r as isize + dr, c as isize + dc);
            if nr < 0 || nc < 0 || nr as usize >= rows || nc as usize >= cols {
                continue;
            }
            let (nr, nc) = (nr as usize, nc as usize);
            let ros = table[dir];
            if ros <= SMIDGEN {
                continue;
            }
            let arrival = t + dist_factor * cell_ft / ros;
            if arrival > t_end || arrival >= out.time(nr, nc) - SMIDGEN {
                continue;
            }
            let nidx = nr * cols + nc;
            if !burnable_at(nidx) {
                continue;
            }
            g.cand[g.len as usize] = (arrival, nidx as u32);
            g.len += 1;
        }
        if g.len > 0 {
            ts.groups.push(g);
        }
    }
}

/// The worker-owned simulation arena: every buffer the propagation engine
/// needs across evaluations, allocated once and reused.
///
/// `FireSim` is immutable shared state (terrain + fuel beds behind `Arc`s);
/// a `SimArena` is the *mutable* counterpart one worker owns privately. It
/// holds the per-cell directional-spread cache, the frontier queues and the
/// arrival-time raster. Construction is O(1): nothing is allocated until
/// the first run, and from then on every buffer is retained at its
/// high-water mark, so once capacities have grown to cover the scenarios a
/// worker evaluates, [`FireSim::simulate_arena`] performs **zero further
/// allocations** — construct one arena per worker (see [`FireSim::arena`])
/// and reuse it for every scenario. On the default bucket kernel the
/// high-water mark tracks the *active-front window*, not the raster: a
/// short burn on a 1000×1000 map holds window-sized scratch plus the
/// (mandatory) full arrival raster, instead of the former eager
/// `rows*cols` heap reservation.
#[derive(Debug, Clone)]
pub struct SimArena {
    rows: usize,
    cols: usize,
    /// Per-cell spread scratch: the directional tables plus the flat SoA
    /// gather buffers that feed them (filled only on terrains where spread
    /// varies with more than the fuel code; window-sized on the bucket
    /// kernel).
    spread: SpreadScratch,
    /// Per-fuel-code directional spread tables (filled only on fuel-only
    /// mosaics); inline, so the fast path never touches the heap.
    per_fuel: [[f64; 8]; 14],
    /// Reference-kernel Dijkstra frontier; empty unless [`Kernel::Heap`]
    /// runs, capacity persists.
    heap: BinaryHeap<(Reverse<Time>, u32)>,
    /// Bucket-kernel frontier.
    queue: BucketQueue,
    /// Burnable ignition cells of the current run (index scratch).
    seeds: Vec<u32>,
    /// Per-window-row dirty column spans of the last bucket run
    /// (inclusive; `lo > hi` means the row was never written).
    span_lo: Vec<u32>,
    span_hi: Vec<u32>,
    /// Cells written outside the active window (possible only through
    /// floating-point slack in the spread-rate bound; reset individually).
    stray: Vec<u32>,
    /// What the next run must reset before writing.
    dirty: Dirty,
    /// Tiled-kernel per-tile drain scratch, one slot per *active* tile of
    /// the current epoch (high-water sized; tiles with no pops cost
    /// nothing).
    tiles: Vec<TileScratch>,
    /// Tiled-kernel epoch buffer: the entries taken from the bucket queue
    /// for the level currently being drained.
    epoch: Vec<(f64, u32)>,
    /// Tiled-kernel tile-keyed epoch entries `(tile, t, idx)`, sorted by
    /// `(tile, pop order)` so each tile's pops form one contiguous run.
    keyed: Vec<(u32, f64, u32)>,
    /// Tiled-kernel `(start, end)` ranges into the sorted epoch buffer,
    /// one per active tile.
    tile_ranges: Vec<(u32, u32)>,
    /// Tiled-kernel k-way merge frontier over tile outbox heads and
    /// in-epoch cascade entries, in reference pop order. The third field is
    /// the source tile slot (`u32::MAX` marks a cascade entry).
    merge: BinaryHeap<(Reverse<Time>, u32, u32)>,
    /// The arrival raster of the most recent evaluation; allocated on
    /// first use.
    out: Option<IgnitionMap>,
}

/// One deferred pop of the tiled kernel: the `(t, idx)` entry itself plus
/// the surviving relaxation candidates precomputed during the parallel
/// drain. Candidate arrivals are pure functions of `(t, spread table,
/// geometry)`, so they can be computed away from the raster; every
/// raster-dependent decision is re-checked at apply time.
#[derive(Debug, Clone, Copy, Default)]
struct PopGroup {
    t: f64,
    idx: u32,
    len: u32,
    cand: [(f64, u32); 8],
}

/// Per-tile drain state of the tiled kernel: the outbox of candidate
/// groups (in pop order) and the merge cursor into it.
#[derive(Debug, Clone, Default)]
struct TileScratch {
    groups: Vec<PopGroup>,
    head: usize,
}

/// Scratch for the fully heterogeneous (per-cell) spread path, laid out as
/// structure-of-arrays: each terrain input is gathered into its own flat
/// buffer once per run (raster-order on the reference kernel,
/// window-order on the bucket kernel), then the spread kernel walks the
/// buffers linearly. Keeping the inputs in separate contiguous arrays (and
/// hoisting the layer-presence branches out of the cell loop) is what lets
/// the compiler vectorize the gather loops and keeps the kernel loop free
/// of per-cell `Option` checks.
#[derive(Debug, Clone, Default)]
struct SpreadScratch {
    /// The output: per-cell directional spread tables.
    per_cell: Vec<[f64; 8]>,
    /// Effective fuel code per cell.
    codes: Vec<u8>,
    /// Slope steepness (`tan` of the slope angle) per cell.
    steep: Vec<f64>,
    /// Aspect azimuth (degrees) per cell.
    aspect: Vec<f64>,
    /// Midflame wind speed (ft/min) per cell.
    wind_fpm: Vec<f64>,
    /// Wind azimuth (degrees) per cell.
    wind_az: Vec<f64>,
}

impl SpreadScratch {
    /// Total capacity across the gather buffers (allocation tracking).
    fn gather_capacity(&self) -> usize {
        self.codes.capacity()
            + self.steep.capacity()
            + self.aspect.capacity()
            + self.wind_fpm.capacity()
            + self.wind_az.capacity()
    }

    /// Heap bytes currently held across all spread buffers.
    fn bytes(&self) -> usize {
        self.per_cell.capacity() * std::mem::size_of::<[f64; 8]>()
            + self.codes.capacity()
            + (self.steep.capacity()
                + self.aspect.capacity()
                + self.wind_fpm.capacity()
                + self.wind_az.capacity())
                * std::mem::size_of::<f64>()
    }
}

impl SimArena {
    /// An arena for `rows × cols` rasters. Construction allocates nothing
    /// — every buffer (arrival raster included) is grown on first use and
    /// then retained at its high-water mark — so arenas for shapes that
    /// are never evaluated cost no memory (the per-worker `ArenaCache`
    /// keys arenas by shape).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "arena dimensions must be non-zero");
        Self {
            rows,
            cols,
            spread: SpreadScratch::default(),
            per_fuel: [[0.0; 8]; 14],
            heap: BinaryHeap::new(),
            queue: BucketQueue::default(),
            seeds: Vec::new(),
            span_lo: Vec::new(),
            span_hi: Vec::new(),
            stray: Vec::new(),
            dirty: Dirty::Clean,
            tiles: Vec::new(),
            epoch: Vec::new(),
            keyed: Vec::new(),
            tile_ranges: Vec::new(),
            merge: BinaryHeap::new(),
            out: None,
        }
    }

    /// Raster rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Raster columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The arrival map written by the last [`FireSim::simulate_arena`] run.
    ///
    /// # Panics
    /// Panics when no simulation has run in this arena yet (the raster is
    /// allocated lazily on first use).
    pub fn map(&self) -> &IgnitionMap {
        self.out
            .as_ref()
            // audit: allow(panic) — documented `# Panics` contract: reading an arena before any run is caller error, pinned by the arena property suite
            .expect("SimArena::map: no simulation has run in this arena yet")
    }

    /// Current capacity of the per-cell spread cache (allocation tracking
    /// for the zero-allocation property tests).
    pub fn spread_capacity(&self) -> usize {
        self.spread.per_cell.capacity()
    }

    /// Total capacity of the flat SoA gather buffers feeding the per-cell
    /// spread kernel (allocation tracking for the zero-allocation tests).
    pub fn gather_capacity(&self) -> usize {
        self.spread.gather_capacity()
    }

    /// Current capacity of the reference-kernel Dijkstra heap (allocation
    /// tracking).
    pub fn heap_capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Heap bytes currently held by every scratch structure in the arena
    /// — frontier queues, SoA gather buffers, per-cell tables, dirty-span
    /// bookkeeping — **excluding** the arrival raster itself (which is the
    /// mandatory output, reported by [`SimArena::raster_bytes`]). This is
    /// the number the landscape bench tracks against the old eager
    /// `rows*cols` heap preallocation.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.heap.capacity() * size_of::<(Reverse<Time>, u32)>()
            + self.queue.bytes()
            + self.spread.bytes()
            + (self.span_lo.capacity()
                + self.span_hi.capacity()
                + self.stray.capacity()
                + self.seeds.capacity())
                * size_of::<u32>()
            + self.tiles.capacity() * size_of::<TileScratch>()
            + self
                .tiles
                .iter()
                .map(|t| t.groups.capacity())
                .sum::<usize>()
                * size_of::<PopGroup>()
            + self.epoch.capacity() * size_of::<(f64, u32)>()
            + self.keyed.capacity() * size_of::<(u32, f64, u32)>()
            + self.tile_ranges.capacity() * size_of::<(u32, u32)>()
            + self.merge.capacity() * size_of::<(Reverse<Time>, u32, u32)>()
    }

    /// Heap bytes held by the arrival raster (0 until the first run).
    pub fn raster_bytes(&self) -> usize {
        self.out
            .as_ref()
            .map_or(0, |m| m.rows() * m.cols() * std::mem::size_of::<f64>())
    }
}

/// How the engine resolves a cell's directional spread table for one run.
enum Tables<'a> {
    /// Uniform terrain: one table for the whole map.
    Uniform([f64; 8]),
    /// Fuel mosaic with globally uniform slope/aspect/wind: one table per
    /// fuel code, looked up through the fuel layer.
    PerFuel(&'a [[f64; 8]; 14], &'a [u8]),
    /// Fully heterogeneous terrain: one table per cell. On the reference
    /// kernel the slice is raster-order over the whole map; on the bucket
    /// kernel it is window-order (see [`Window::local`]).
    PerCell(&'a [[f64; 8]]),
}

/// The fire propagation simulator for one terrain.
///
/// A `FireSim` is *immutable shared state*: the terrain and the precomputed
/// NFFL fuel beds both live behind `Arc`s, so cloning is two reference
/// bumps and workers never copy a raster. All mutable evaluation state
/// lives in a worker-owned [`SimArena`]; the allocation-free hot path is
/// [`FireSim::simulate_arena`].
#[derive(Debug, Clone)]
pub struct FireSim {
    terrain: Arc<Terrain>,
    beds: Arc<[FuelBed]>,
}

impl FireSim {
    /// Builds a simulator over `terrain` with the standard NFFL catalog
    /// (the fuel-bed table is process-wide shared, not rebuilt per call).
    pub fn new(terrain: Terrain) -> Self {
        Self::shared(Arc::new(terrain))
    }

    /// Builds a simulator over an already-shared terrain (no copy).
    pub fn shared(terrain: Arc<Terrain>) -> Self {
        Self {
            terrain,
            beds: standard_beds(),
        }
    }

    /// The terrain this simulator burns.
    pub fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// The shared terrain handle (cheap to clone into other simulators).
    pub fn terrain_shared(&self) -> Arc<Terrain> {
        Arc::clone(&self.terrain)
    }

    /// A fresh [`SimArena`] sized for this terrain.
    pub fn arena(&self) -> SimArena {
        SimArena::new(self.terrain.rows(), self.terrain.cols())
    }

    /// Directional spread rates for one cell under `scenario`.
    fn cell_spread(&self, row: usize, col: usize, scenario: &Scenario) -> SpreadVector {
        let fuel = self.terrain.fuel_at(row, col, scenario.model);
        let bed = &self.beds[fuel as usize];
        if !bed.burnable {
            return SpreadVector::no_spread();
        }
        let slope_deg = self.terrain.slope_at(row, col, scenario.slope_deg);
        let aspect = self.terrain.aspect_at(row, col, scenario.aspect_deg);
        let (wind_mph, wind_dir) =
            self.terrain
                .wind_at(row, col, scenario.wind_speed_mph, scenario.wind_dir_deg);
        let inputs = SpreadInputs {
            wind_fpm: wind_mph * crate::MPH_TO_FPM,
            wind_azimuth: wind_dir,
            slope_steepness: slope_deg.to_radians().tan(),
            aspect_azimuth: aspect,
        };
        wind_slope_max(bed, &scenario.moisture(), &inputs)
    }

    /// Directional table for fuel model `code` under the scenario's global
    /// slope/aspect/wind — the per-fuel cache entry. Bit-identical to
    /// [`FireSim::cell_spread`] on a terrain whose only override layer is
    /// the fuel mosaic.
    fn fuel_table(&self, code: usize, scenario: &Scenario, moisture: &MoistureRegime) -> [f64; 8] {
        let bed = &self.beds[code];
        if !bed.burnable {
            return [0.0; 8];
        }
        let inputs = SpreadInputs {
            wind_fpm: scenario.wind_speed_mph * crate::MPH_TO_FPM,
            wind_azimuth: scenario.wind_dir_deg,
            slope_steepness: scenario.slope_deg.to_radians().tan(),
            aspect_azimuth: scenario.aspect_deg,
        };
        wind_slope_max(bed, moisture, &inputs).compass_ros()
    }

    /// The per-catalog-model `(ros0, reaction intensity)` hoist:
    /// [`no_wind_no_slope`] runs the fuel-particle loops and depends only
    /// on (fuel code, moisture), so it is computed once per model (≤ 14
    /// calls) instead of once per cell.
    fn hoisted_base(&self, moisture: &MoistureRegime) -> [(f64, f64); 14] {
        let mut base = [(0.0f64, 0.0f64); 14];
        for (bed, slot) in self.beds.iter().zip(base.iter_mut()) {
            *slot = no_wind_no_slope(bed, moisture);
        }
        base
    }

    /// An upper bound (ft/min) on the spread rate any cell of this terrain
    /// can reach under `scenario`, used to size the active-front window.
    /// O(catalog size) per call: the terrain caches its per-layer maxima
    /// (fuel-code mask, max slope, max wind factor) at construction.
    ///
    /// Soundness: for every cell, `ros_at_azimuth ≤ ros_max` and the
    /// spread analysis yields `ros_max ≤ ros0 · (1 + φ_w + φ_s)` — the
    /// wind-only and slope-only branches are exactly that, the combined
    /// branch vector-adds to `ros0 + rv` with
    /// `rv = √((slp + wnd·cosθ)² + (wnd·sinθ)²) ≤ slp + wnd`, and the
    /// effective-wind cap only lowers `ros_max`. `φ_w = k·U^b` and
    /// `φ_s = k·tan²` are monotone in wind speed and slope, so evaluating
    /// them at the terrain-wide maxima bounds every cell. (The bucket
    /// kernel additionally tolerates the bound being off by floating-point
    /// slack: cells popped outside the gathered window fall back to an
    /// exact lazy per-cell table.)
    pub fn spread_rate_bound(&self, scenario: &Scenario) -> f64 {
        let mask = self.terrain.fuel_code_mask(scenario.model);
        if mask == 0 {
            return 0.0;
        }
        let moisture = scenario.moisture();
        let wind_fpm = self.terrain.max_wind_speed(scenario.wind_speed_mph) * crate::MPH_TO_FPM;
        let steep = self
            .terrain
            .max_slope_deg(scenario.slope_deg)
            .to_radians()
            .tan();
        let mut cap = 0.0f64;
        for (code, bed) in self.beds.iter().enumerate() {
            if mask & (1 << code) == 0 || !bed.burnable {
                continue;
            }
            let (ros0, _) = no_wind_no_slope(bed, &moisture);
            if ros0 <= SMIDGEN {
                continue;
            }
            let phi_w = if wind_fpm <= SMIDGEN {
                0.0
            } else {
                bed.wind_k * wind_fpm.powf(bed.wind_b)
            };
            let phi_s = if steep <= SMIDGEN {
                0.0
            } else {
                bed.slope_k * steep * steep
            };
            cap = cap.max(ros0 * (1.0 + phi_w + phi_s));
        }
        cap
    }

    /// The wind/slope half of the spread math over arbitrary SoA slices:
    /// `out[i]` becomes the directional table of the cell whose inputs sit
    /// at index `i`. The slice form is what lets the parallel window
    /// gather hand disjoint band sub-slices of the same buffers to
    /// concurrent workers.
    // lint: no_alloc
    #[allow(clippy::too_many_arguments)]
    fn spread_kernel_into(
        codes: &[u8],
        steep: &[f64],
        aspect: &[f64],
        wind_fpm: &[f64],
        wind_az: &[f64],
        beds: &[FuelBed],
        base: &[(f64, f64); 14],
        out: &mut [[f64; 8]],
    ) {
        for (idx, slot) in out.iter_mut().enumerate() {
            let code = codes[idx] as usize;
            // Unburnable beds hoist to `(0.0, 0.0)`, so the `ros0` guard
            // covers both the unburnable and the extinguished case — the
            // same two paths `cell_spread` resolves to `no_spread`.
            let (ros0, rx_int) = base[code];
            let v = if ros0 <= SMIDGEN {
                SpreadVector::no_spread()
            } else {
                let inputs = SpreadInputs {
                    wind_fpm: wind_fpm[idx],
                    wind_azimuth: wind_az[idx],
                    slope_steepness: steep[idx],
                    aspect_azimuth: aspect[idx],
                };
                wind_slope_from_ros0(&beds[code], ros0, rx_int, &inputs)
            };
            let table = v.compass_ros();
            debug_assert!(
                table.iter().all(|ros| ros.is_finite() && *ros >= 0.0),
                "non-finite or negative ROS in spread table at SoA index {idx}: {table:?}"
            );
            *slot = table;
        }
    }

    /// The wind/slope half of the spread math, one linear pass over the
    /// gathered SoA buffers: `scratch.per_cell[i]` becomes the directional
    /// table of the cell whose inputs sit at index `i`.
    // lint: no_alloc
    fn spread_kernel(
        scratch: &mut SpreadScratch,
        beds: &[FuelBed],
        base: &[(f64, f64); 14],
        n: usize,
    ) {
        let SpreadScratch {
            per_cell,
            codes,
            steep,
            aspect,
            wind_fpm,
            wind_az,
        } = scratch;
        per_cell.clear();
        per_cell.resize(n, [0.0; 8]);
        Self::spread_kernel_into(
            &codes[..n],
            &steep[..n],
            &aspect[..n],
            &wind_fpm[..n],
            &wind_az[..n],
            beds,
            base,
            per_cell,
        );
    }

    /// Fills the per-cell directional-spread tables for a fully
    /// heterogeneous terrain via the flat SoA path, whole raster. Three
    /// phases:
    ///
    /// 1. **Gather** — resolve each override layer into its own contiguous
    ///    raster-order buffer, hoisting the layer-presence branch (and the
    ///    per-layer transforms: `tan`, mph→fpm, azimuth wrap) out of the
    ///    cell loop into simple vectorizable map/splat loops.
    /// 2. **Hoist** — [`FireSim::hoisted_base`].
    /// 3. **Kernel** — [`FireSim::spread_kernel`].
    ///
    /// Bit-identity with the old per-cell [`FireSim::cell_spread`] loop:
    /// the gathered inputs are computed by the same expressions the
    /// [`Terrain`] accessors use, `no_wind_no_slope` is pure in (bed,
    /// moisture), and [`wind_slope_max`] is exactly `no_wind_no_slope`
    /// composed with [`wind_slope_from_ros0`] — pinned by the arena
    /// regression suite.
    // lint: no_alloc
    fn fill_per_cell(&self, scenario: &Scenario, scratch: &mut SpreadScratch) {
        let t = &*self.terrain;
        let n = t.rows() * t.cols();

        // Every buffer is cleared then refilled to exactly `n`; `reserve`
        // is a no-op for a warmed arena and one exact allocation on the
        // cold (`simulate_into`) path instead of doubling growth.
        let codes = &mut scratch.codes;
        codes.clear();
        codes.reserve(n);
        match t.fuel_layer() {
            Some(g) => codes.extend_from_slice(g.as_slice()),
            None => codes.resize(n, scenario.model),
        }

        let steep = &mut scratch.steep;
        steep.clear();
        steep.reserve(n);
        match t.slope_layer() {
            Some(g) => steep.extend(g.as_slice().iter().map(|&d| d.to_radians().tan())),
            None => steep.resize(n, scenario.slope_deg.to_radians().tan()),
        }

        let aspect = &mut scratch.aspect;
        aspect.clear();
        aspect.reserve(n);
        match t.aspect_layer() {
            Some(g) => aspect.extend_from_slice(g.as_slice()),
            None => aspect.resize(n, scenario.aspect_deg),
        }

        let wind_fpm = &mut scratch.wind_fpm;
        let wind_az = &mut scratch.wind_az;
        wind_fpm.clear();
        wind_az.clear();
        wind_fpm.reserve(n);
        wind_az.reserve(n);
        match t.wind_layer() {
            Some((factor, offset)) => {
                wind_fpm.extend(
                    factor
                        .as_slice()
                        .iter()
                        .map(|&f| (scenario.wind_speed_mph * f) * crate::MPH_TO_FPM),
                );
                wind_az.extend(
                    offset
                        .as_slice()
                        .iter()
                        .map(|&o| normalize_azimuth(scenario.wind_dir_deg + o)),
                );
            }
            None => {
                wind_fpm.resize(n, scenario.wind_speed_mph * crate::MPH_TO_FPM);
                wind_az.resize(n, scenario.wind_dir_deg);
            }
        }

        let moisture = scenario.moisture();
        let base = self.hoisted_base(&moisture);
        Self::spread_kernel(scratch, &self.beds, &base, n);
    }

    /// Window-bounded variant of [`FireSim::fill_per_cell`]: gathers and
    /// computes tables only for the cells inside `win`, in window-row
    /// order. Each gathered value is produced by the exact expression the
    /// full-raster gather uses on the same cell (the loops walk per-row
    /// sub-slices of the same layers), so the window tables are
    /// bit-identical to the corresponding full-raster entries.
    // lint: no_alloc
    fn fill_per_cell_window(
        &self,
        scenario: &Scenario,
        scratch: &mut SpreadScratch,
        win: &Window,
        base: &[(f64, f64); 14],
    ) {
        let t = &*self.terrain;
        let cols = t.cols();
        let n = win.cells();

        let codes = &mut scratch.codes;
        codes.clear();
        codes.reserve(n);
        match t.fuel_layer() {
            Some(g) => {
                let s = g.as_slice();
                for wr in 0..win.rows {
                    let off = (win.r0 + wr) * cols + win.c0;
                    codes.extend_from_slice(&s[off..off + win.cols]);
                }
            }
            None => codes.resize(n, scenario.model),
        }

        let steep = &mut scratch.steep;
        steep.clear();
        steep.reserve(n);
        match t.slope_layer() {
            Some(g) => {
                let s = g.as_slice();
                for wr in 0..win.rows {
                    let off = (win.r0 + wr) * cols + win.c0;
                    steep.extend(s[off..off + win.cols].iter().map(|&d| d.to_radians().tan()));
                }
            }
            None => steep.resize(n, scenario.slope_deg.to_radians().tan()),
        }

        let aspect = &mut scratch.aspect;
        aspect.clear();
        aspect.reserve(n);
        match t.aspect_layer() {
            Some(g) => {
                let s = g.as_slice();
                for wr in 0..win.rows {
                    let off = (win.r0 + wr) * cols + win.c0;
                    aspect.extend_from_slice(&s[off..off + win.cols]);
                }
            }
            None => aspect.resize(n, scenario.aspect_deg),
        }

        let wind_fpm = &mut scratch.wind_fpm;
        let wind_az = &mut scratch.wind_az;
        wind_fpm.clear();
        wind_az.clear();
        wind_fpm.reserve(n);
        wind_az.reserve(n);
        match t.wind_layer() {
            Some((factor, offset)) => {
                let (fs, os) = (factor.as_slice(), offset.as_slice());
                for wr in 0..win.rows {
                    let off = (win.r0 + wr) * cols + win.c0;
                    wind_fpm.extend(
                        fs[off..off + win.cols]
                            .iter()
                            .map(|&f| (scenario.wind_speed_mph * f) * crate::MPH_TO_FPM),
                    );
                    wind_az.extend(
                        os[off..off + win.cols]
                            .iter()
                            .map(|&o| normalize_azimuth(scenario.wind_dir_deg + o)),
                    );
                }
            }
            None => {
                wind_fpm.resize(n, scenario.wind_speed_mph * crate::MPH_TO_FPM);
                wind_az.resize(n, scenario.wind_dir_deg);
            }
        }

        Self::spread_kernel(scratch, &self.beds, base, n);
    }

    /// Parallel variant of [`FireSim::fill_per_cell_window`]: the window is
    /// split into contiguous row bands, and each band gathers its inputs
    /// and runs the spread kernel into *disjoint sub-slices* of the shared
    /// SoA buffers concurrently. Every cell's value is produced by the
    /// exact expression the serial gather uses (cells are independent), so
    /// the filled tables are bit-identical to the serial fill — pinned by
    /// the `parallel_window_fill_matches_serial` test. Falls back to the
    /// serial path when one worker or a small window makes bands pointless.
    fn fill_per_cell_window_par(
        &self,
        scenario: &Scenario,
        scratch: &mut SpreadScratch,
        win: &Window,
        base: &[(f64, f64); 14],
        workers: usize,
    ) {
        let n = win.cells();
        if workers <= 1 || n < 16_384 || win.rows < 2 {
            return self.fill_per_cell_window(scenario, scratch, win, base);
        }
        let t = &*self.terrain;
        let cols = t.cols();

        let SpreadScratch {
            per_cell,
            codes,
            steep,
            aspect,
            wind_fpm,
            wind_az,
        } = scratch;
        codes.clear();
        codes.resize(n, 0);
        steep.clear();
        steep.resize(n, 0.0);
        aspect.clear();
        aspect.resize(n, 0.0);
        wind_fpm.clear();
        wind_fpm.resize(n, 0.0);
        wind_az.clear();
        wind_az.resize(n, 0.0);
        per_cell.clear();
        per_cell.resize(n, [0.0; 8]);

        /// One row band's disjoint view of the gather buffers.
        struct Band<'a> {
            wr0: usize,
            codes: &'a mut [u8],
            steep: &'a mut [f64],
            aspect: &'a mut [f64],
            wind_fpm: &'a mut [f64],
            wind_az: &'a mut [f64],
            per_cell: &'a mut [[f64; 8]],
        }

        let nbands = (workers * 4).min(win.rows);
        let band_rows = win.rows.div_ceil(nbands);
        let mut bands: Vec<Band<'_>> = Vec::with_capacity(nbands);
        {
            let (mut rc, mut rs, mut ra, mut rwf, mut rwa, mut rp) = (
                &mut codes[..],
                &mut steep[..],
                &mut aspect[..],
                &mut wind_fpm[..],
                &mut wind_az[..],
                &mut per_cell[..],
            );
            let mut wr0 = 0;
            while wr0 < win.rows {
                let rows_here = band_rows.min(win.rows - wr0);
                let cut = rows_here * win.cols;
                let (bc, tc) = rc.split_at_mut(cut);
                let (bs, ts) = rs.split_at_mut(cut);
                let (ba, ta) = ra.split_at_mut(cut);
                let (bwf, twf) = rwf.split_at_mut(cut);
                let (bwa, twa) = rwa.split_at_mut(cut);
                let (bp, tp) = rp.split_at_mut(cut);
                (rc, rs, ra, rwf, rwa, rp) = (tc, ts, ta, twf, twa, tp);
                bands.push(Band {
                    wr0,
                    codes: bc,
                    steep: bs,
                    aspect: ba,
                    wind_fpm: bwf,
                    wind_az: bwa,
                    per_cell: bp,
                });
                wr0 += rows_here;
            }
        }

        let fuel = t.fuel_layer().map(|g| g.as_slice());
        let slope = t.slope_layer().map(|g| g.as_slice());
        let aspect_l = t.aspect_layer().map(|g| g.as_slice());
        let wind_l = t.wind_layer().map(|(f, o)| (f.as_slice(), o.as_slice()));
        let beds = &self.beds;
        parworker::scoped_for_each_mut(workers, &mut bands, 1, |_, band| {
            let rows_here = band.codes.len() / win.cols;
            for br in 0..rows_here {
                let off = (win.r0 + band.wr0 + br) * cols + win.c0;
                let dst = br * win.cols..(br + 1) * win.cols;
                match fuel {
                    Some(s) => band.codes[dst.clone()].copy_from_slice(&s[off..off + win.cols]),
                    None => band.codes[dst.clone()].fill(scenario.model),
                }
                match slope {
                    Some(s) => {
                        for (v, &d) in band.steep[dst.clone()]
                            .iter_mut()
                            .zip(&s[off..off + win.cols])
                        {
                            *v = d.to_radians().tan();
                        }
                    }
                    None => band.steep[dst.clone()].fill(scenario.slope_deg.to_radians().tan()),
                }
                match aspect_l {
                    Some(s) => band.aspect[dst.clone()].copy_from_slice(&s[off..off + win.cols]),
                    None => band.aspect[dst.clone()].fill(scenario.aspect_deg),
                }
                match wind_l {
                    Some((fs, os)) => {
                        for (v, &f) in band.wind_fpm[dst.clone()]
                            .iter_mut()
                            .zip(&fs[off..off + win.cols])
                        {
                            *v = (scenario.wind_speed_mph * f) * crate::MPH_TO_FPM;
                        }
                        for (v, &o) in band.wind_az[dst.clone()]
                            .iter_mut()
                            .zip(&os[off..off + win.cols])
                        {
                            *v = normalize_azimuth(scenario.wind_dir_deg + o);
                        }
                    }
                    None => {
                        band.wind_fpm[dst.clone()]
                            .fill(scenario.wind_speed_mph * crate::MPH_TO_FPM);
                        band.wind_az[dst.clone()].fill(scenario.wind_dir_deg);
                    }
                }
            }
            Self::spread_kernel_into(
                band.codes,
                band.steep,
                band.aspect,
                band.wind_fpm,
                band.wind_az,
                beds,
                base,
                band.per_cell,
            );
        });
    }

    /// Lazy single-cell fallback for bucket-kernel pops that land outside
    /// the gathered window (possible only through floating-point slack in
    /// [`FireSim::spread_rate_bound`]). Resolves the cell's inputs with
    /// the exact expressions the SoA gather uses and runs the same
    /// wind/slope kernel, so the result is bit-identical to the table the
    /// full gather would have produced — pinned by the
    /// `fallback_cell_table_matches_gathered_fill` test.
    // lint: no_alloc
    fn cell_table_at(
        &self,
        r: usize,
        c: usize,
        scenario: &Scenario,
        base: &[(f64, f64); 14],
    ) -> [f64; 8] {
        let t = &*self.terrain;
        let idx = r * t.cols() + c;
        let code = match t.fuel_layer() {
            Some(g) => g.as_slice()[idx],
            None => scenario.model,
        } as usize;
        let (ros0, rx_int) = base[code];
        if ros0 <= SMIDGEN {
            return SpreadVector::no_spread().compass_ros();
        }
        let steep = match t.slope_layer() {
            Some(g) => g.as_slice()[idx].to_radians().tan(),
            None => scenario.slope_deg.to_radians().tan(),
        };
        let aspect = match t.aspect_layer() {
            Some(g) => g.as_slice()[idx],
            None => scenario.aspect_deg,
        };
        let (wind_fpm, wind_azimuth) = match t.wind_layer() {
            Some((f, o)) => (
                (scenario.wind_speed_mph * f.as_slice()[idx]) * crate::MPH_TO_FPM,
                normalize_azimuth(scenario.wind_dir_deg + o.as_slice()[idx]),
            ),
            None => (
                scenario.wind_speed_mph * crate::MPH_TO_FPM,
                scenario.wind_dir_deg,
            ),
        };
        let inputs = SpreadInputs {
            wind_fpm,
            wind_azimuth,
            slope_steepness: steep,
            aspect_azimuth: aspect,
        };
        wind_slope_from_ros0(&self.beds[code], ros0, rx_int, &inputs).compass_ros()
    }

    /// Simulates fire growth from `initial` (cells burning at `t0`) for
    /// `duration` minutes, returning the ignition-time map. Cells the fire
    /// does not reach within the horizon hold [`landscape::UNIGNITED`];
    /// initial cells hold `t0`.
    ///
    /// # Panics
    /// Panics when `initial` does not match the terrain shape, `t0` is
    /// negative/non-finite or `duration` is not positive.
    pub fn simulate(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
    ) -> IgnitionMap {
        let mut out = IgnitionMap::unignited(self.terrain.rows(), self.terrain.cols());
        self.simulate_into(scenario, initial, t0, duration, &mut out);
        out
    }

    /// Output-reusing variant of [`FireSim::simulate`]: `out` is cleared
    /// and refilled, keeping its buffer. Runs the reference heap kernel
    /// (scratch is allocated per call) — workers that evaluate in a loop
    /// should hold a [`SimArena`] and call [`FireSim::simulate_arena`]
    /// instead.
    pub fn simulate_into(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        out: &mut IgnitionMap,
    ) {
        let mut spread = SpreadScratch::default();
        let mut per_fuel = [[0.0; 8]; 14];
        let mut heap = BinaryHeap::new();
        self.run_dijkstra(
            scenario,
            initial,
            t0,
            duration,
            &mut spread,
            &mut per_fuel,
            &mut heap,
            out,
        );
    }

    /// The allocation-free hot path: simulates into the arena's buffers and
    /// returns the arrival map. Runs the bucket kernel ([`Kernel::Bucket`],
    /// bit-identical to the reference) — the arena's buffers persist at
    /// their high-water mark, so repeated calls stop allocating once that
    /// mark covers the scenarios being evaluated (the property the
    /// `arena_is_allocation_free_in_steady_state` test pins).
    ///
    /// # Panics
    /// Panics when the arena or `initial` does not match the terrain shape,
    /// `t0` is negative/non-finite or `duration` is not positive.
    pub fn simulate_arena<'a>(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        arena: &'a mut SimArena,
    ) -> &'a IgnitionMap {
        self.simulate_arena_kernel(scenario, initial, t0, duration, arena, Kernel::Bucket)
    }

    /// [`FireSim::simulate_arena`] with an explicit kernel choice —
    /// exposed so benches and the equivalence property suite can run the
    /// reference heap kernel against the bucket kernel on the same arena
    /// API. Both kernels produce bit-identical rasters.
    pub fn simulate_arena_kernel<'a>(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        arena: &'a mut SimArena,
        kernel: Kernel,
    ) -> &'a IgnitionMap {
        let (rows, cols) = (arena.rows, arena.cols);
        assert_eq!(
            (rows, cols),
            (self.terrain.rows(), self.terrain.cols()),
            "arena shape mismatch"
        );
        match kernel {
            Kernel::Bucket => self.run_bucket(scenario, initial, t0, duration, arena),
            Kernel::Tiled { tile, workers } => {
                self.run_tiled(scenario, initial, t0, duration, arena, tile, workers)
            }
            Kernel::Heap => {
                let SimArena {
                    spread,
                    per_fuel,
                    heap,
                    out,
                    dirty,
                    ..
                } = arena;
                let out = out.get_or_insert_with(|| IgnitionMap::unignited(rows, cols));
                self.run_dijkstra(scenario, initial, t0, duration, spread, per_fuel, heap, out);
                // The reference kernel writes through a full clear; the
                // next bucket run must not assume span-bounded dirt.
                *dirty = Dirty::All;
            }
        }
        arena.map()
    }

    /// The reference Dijkstra minimum-travel-time sweep over reusable
    /// buffers — full-raster gather and reset, single binary heap. The
    /// implementation behind `simulate`/`simulate_into` and the oracle the
    /// bucket kernel is pinned against.
    #[allow(clippy::too_many_arguments)]
    // lint: no_alloc
    fn run_dijkstra(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        spread: &mut SpreadScratch,
        per_fuel: &mut [[f64; 8]; 14],
        heap: &mut BinaryHeap<(Reverse<Time>, u32)>,
        out: &mut IgnitionMap,
    ) {
        let rows = self.terrain.rows();
        let cols = self.terrain.cols();
        assert_eq!(
            (initial.rows(), initial.cols()),
            (rows, cols),
            "initial fire line shape mismatch"
        );
        assert!(
            t0.is_finite() && t0 >= 0.0,
            "t0 must be a non-negative instant"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be positive"
        );
        assert_eq!(
            (out.rows(), out.cols()),
            (rows, cols),
            "output map shape mismatch"
        );

        out.clear();
        heap.clear();
        let t_end = t0 + duration;
        let cell_ft = self.terrain.cell_size_ft();

        // Resolve the spread-table mode once per run. Uniform terrains share
        // one table; fuel-only mosaics share one table per fuel code (≤ 14
        // spread computations instead of rows × cols); anything else gets
        // the per-cell cache in the arena.
        let tables: Tables<'_> = if !self.terrain.has_overrides() {
            Tables::Uniform(self.cell_spread(0, 0, scenario).compass_ros())
        } else if self.terrain.fuel_is_only_override() {
            let moisture = scenario.moisture();
            for (code, table) in per_fuel.iter_mut().enumerate() {
                *table = self.fuel_table(code, scenario, &moisture);
            }
            let fuel = self
                .terrain
                .fuel_layer()
                // audit: allow(panic) — fuel_is_only_override() just returned true, which requires a fuel layer
                .expect("fuel_is_only_override implies a fuel layer")
                .as_slice();
            Tables::PerFuel(per_fuel, fuel)
        } else {
            self.fill_per_cell(scenario, spread);
            Tables::PerCell(&spread.per_cell)
        };
        let ros_of = |idx: usize| -> &[f64; 8] {
            match &tables {
                Tables::Uniform(table) => table,
                Tables::PerFuel(by_code, fuel) => &by_code[fuel[idx] as usize],
                Tables::PerCell(cells) => &cells[idx],
            }
        };
        // A cell can ignite iff its own bed can burn (no-fuel cells are
        // firebreaks). With no fuel layer burnability is global.
        let fuel_slice = self.terrain.fuel_layer().map(|g| g.as_slice());
        // Only consult the scenario's model when no fuel layer overrides it
        // (a layered terrain makes the global model irrelevant, and must not
        // panic on an out-of-catalog value it never uses).
        let scenario_burnable = fuel_slice.is_none() && self.beds[scenario.model as usize].burnable;
        let burnable_at = |idx: usize| -> bool {
            match fuel_slice {
                Some(f) => self.beds[f[idx] as usize].burnable,
                None => scenario_burnable,
            }
        };

        for (idx, &lit) in initial.mask().as_slice().iter().enumerate() {
            if !lit || !burnable_at(idx) {
                continue;
            }
            out.set_time(idx / cols, idx % cols, t0);
            heap.push((Reverse(Time(t0)), idx as u32));
        }

        // Pop order IS the kernel-equivalence contract: ascending time,
        // ties broken by larger cell index. Audited in debug builds.
        #[cfg(debug_assertions)]
        let mut prev_pop: Option<(f64, u32)> = None;
        while let Some((Reverse(Time(t)), idx)) = heap.pop() {
            #[cfg(debug_assertions)]
            {
                if let Some((pt, pi)) = prev_pop {
                    debug_assert!(
                        pt < t || (pt == t && pi >= idx),
                        "heap pop order regressed: ({pt}, {pi}) then ({t}, {idx})"
                    );
                }
                prev_pop = Some((t, idx));
            }
            let idx = idx as usize;
            let (r, c) = (idx / cols, idx % cols);
            if t > out.time(r, c) + SMIDGEN {
                continue; // stale entry
            }
            let table = ros_of(idx);
            for (dir, &(dr, dc, dist_factor)) in landscape::NEIGHBOUR_OFFSETS.iter().enumerate() {
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nc < 0 || nr as usize >= rows || nc as usize >= cols {
                    continue;
                }
                let (nr, nc) = (nr as usize, nc as usize);
                let ros = table[dir];
                if ros <= SMIDGEN {
                    continue;
                }
                let arrival = t + dist_factor * cell_ft / ros;
                if arrival > t_end || arrival >= out.time(nr, nc) - SMIDGEN {
                    continue;
                }
                let nidx = nr * cols + nc;
                if !burnable_at(nidx) {
                    continue;
                }
                out.set_time(nr, nc, arrival);
                heap.push((Reverse(Time(arrival)), nidx as u32));
            }
        }
    }

    /// The bucket-kernel sweep: monotone bucket queue + active-front
    /// bounding + span-tracked raster reset. Execution is bit-identical to
    /// [`FireSim::run_dijkstra`] (see the module docs for the ordering
    /// argument); the work and memory touched scale with the reachable
    /// window instead of the raster.
    // lint: no_alloc
    fn run_bucket(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        arena: &mut SimArena,
    ) {
        let rows = self.terrain.rows();
        let cols = self.terrain.cols();
        assert_eq!(
            (initial.rows(), initial.cols()),
            (rows, cols),
            "initial fire line shape mismatch"
        );
        assert!(
            t0.is_finite() && t0 >= 0.0,
            "t0 must be a non-negative instant"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be positive"
        );

        let SimArena {
            spread,
            per_fuel,
            queue,
            seeds,
            span_lo,
            span_hi,
            stray,
            dirty,
            out,
            ..
        } = arena;
        let out = out.get_or_insert_with(|| IgnitionMap::unignited(rows, cols));

        reset_raster(dirty, out, span_lo, span_hi, stray, cols);

        let t_end = t0 + duration;
        let cell_ft = self.terrain.cell_size_ft();

        let fuel_slice = self.terrain.fuel_layer().map(|g| g.as_slice());
        let scenario_burnable = fuel_slice.is_none() && self.beds[scenario.model as usize].burnable;
        let burnable_at = |idx: usize| -> bool {
            match fuel_slice {
                Some(f) => self.beds[f[idx] as usize].burnable,
                None => scenario_burnable,
            }
        };

        // One pass over the ignition mask: collect burnable seeds and
        // their bounding box.
        seeds.clear();
        let (mut br0, mut bc0, mut br1, mut bc1) = (usize::MAX, usize::MAX, 0usize, 0usize);
        for (idx, &lit) in initial.mask().as_slice().iter().enumerate() {
            if !lit || !burnable_at(idx) {
                continue;
            }
            seeds.push(idx as u32);
            let (r, c) = (idx / cols, idx % cols);
            br0 = br0.min(r);
            bc0 = bc0.min(c);
            br1 = br1.max(r);
            bc1 = bc1.max(c);
        }
        if seeds.is_empty() {
            return; // nothing written; the raster stays clean
        }

        // Active-front window: the seed bounding box expanded by the
        // farthest whole-cell distance the fire can cross within the
        // horizon. A diagonal step advances one Chebyshev unit and costs
        // `√2 · cell_ft / ros ≥ cell_ft / ros_cap`, so `ros_cap · duration
        // / cell_ft` Chebyshev units bound the reach; +2 cells and a tiny
        // relative inflation absorb floating-point slack in the bound (and
        // any remainder is caught by the lazy out-of-window fallback).
        let reach = {
            let cap = self.spread_rate_bound(scenario);
            if cap <= SMIDGEN {
                0
            } else {
                let cells = (cap * duration / cell_ft * (1.0 + 1e-9)).ceil() + 2.0;
                cells.min(rows.max(cols) as f64) as usize
            }
        };
        let win = {
            let r0 = br0.saturating_sub(reach);
            let c0 = bc0.saturating_sub(reach);
            let r1 = (br1 + reach).min(rows - 1);
            let c1 = (bc1 + reach).min(cols - 1);
            Window {
                r0,
                c0,
                rows: r1 - r0 + 1,
                cols: c1 - c0 + 1,
            }
        };

        span_lo.clear();
        span_lo.resize(win.rows, u32::MAX);
        span_hi.clear();
        span_hi.resize(win.rows, 0);

        // Table resolution mirrors the reference kernel; the per-cell mode
        // gathers window-local tables and keeps the hoisted base around
        // for the out-of-window fallback.
        let mut percell_base: Option<[(f64, f64); 14]> = None;
        let tables: Tables<'_> = if !self.terrain.has_overrides() {
            Tables::Uniform(self.cell_spread(0, 0, scenario).compass_ros())
        } else if self.terrain.fuel_is_only_override() {
            let moisture = scenario.moisture();
            for (code, table) in per_fuel.iter_mut().enumerate() {
                *table = self.fuel_table(code, scenario, &moisture);
            }
            let fuel = self
                .terrain
                .fuel_layer()
                // audit: allow(panic) — fuel_is_only_override() just returned true, which requires a fuel layer
                .expect("fuel_is_only_override implies a fuel layer")
                .as_slice();
            Tables::PerFuel(per_fuel, fuel)
        } else {
            let moisture = scenario.moisture();
            let base = self.hoisted_base(&moisture);
            self.fill_per_cell_window(scenario, spread, &win, &base);
            percell_base = Some(base);
            Tables::PerCell(&spread.per_cell)
        };

        queue.reset(t0, duration);
        for &sidx in seeds.iter() {
            let (r, c) = (sidx as usize / cols, sidx as usize % cols);
            out.set_time(r, c, t0);
            // Seeds are inside the bounding box, hence inside the window.
            let wr = r - win.r0;
            span_lo[wr] = span_lo[wr].min(c as u32);
            span_hi[wr] = span_hi[wr].max(c as u32);
            queue.push(t0, sidx);
        }
        *dirty = Dirty::Spans {
            r0: win.r0,
            rows: win.rows,
        };

        // The bucket queue must reproduce the reference heap's pop order
        // exactly (ascending time, ties broken by larger cell index) —
        // that order is the whole bit-identity argument. Audited in debug
        // builds.
        #[cfg(debug_assertions)]
        let mut prev_pop: Option<(f64, u32)> = None;
        while let Some((t, idx)) = queue.pop() {
            #[cfg(debug_assertions)]
            {
                if let Some((pt, pi)) = prev_pop {
                    debug_assert!(
                        pt < t || (pt == t && pi >= idx),
                        "bucket pop order regressed: ({pt}, {pi}) then ({t}, {idx})"
                    );
                }
                prev_pop = Some((t, idx));
            }
            let idx = idx as usize;
            let (r, c) = (idx / cols, idx % cols);
            if t > out.time(r, c) + SMIDGEN {
                continue; // stale entry
            }
            let fallback: [f64; 8];
            let table: &[f64; 8] = match &tables {
                Tables::Uniform(table) => table,
                Tables::PerFuel(by_code, fuel) => &by_code[fuel[idx] as usize],
                Tables::PerCell(cells) => {
                    if win.contains(r, c) {
                        &cells[win.local(r, c)]
                    } else {
                        fallback = self.cell_table_at(
                            r,
                            c,
                            scenario,
                            // audit: allow(panic) — percell_base is always set by the PerCell branch that selects this closure
                            percell_base.as_ref().expect("per-cell mode keeps the base"),
                        );
                        &fallback
                    }
                }
            };
            for (dir, &(dr, dc, dist_factor)) in landscape::NEIGHBOUR_OFFSETS.iter().enumerate() {
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nc < 0 || nr as usize >= rows || nc as usize >= cols {
                    continue;
                }
                let (nr, nc) = (nr as usize, nc as usize);
                let ros = table[dir];
                if ros <= SMIDGEN {
                    continue;
                }
                let arrival = t + dist_factor * cell_ft / ros;
                if arrival > t_end || arrival >= out.time(nr, nc) - SMIDGEN {
                    continue;
                }
                let nidx = nr * cols + nc;
                if !burnable_at(nidx) {
                    continue;
                }
                out.set_time(nr, nc, arrival);
                if win.contains(nr, nc) {
                    let wr = nr - win.r0;
                    span_lo[wr] = span_lo[wr].min(nc as u32);
                    span_hi[wr] = span_hi[wr].max(nc as u32);
                } else {
                    stray.push(nidx as u32);
                }
                queue.push(arrival, nidx as u32);
            }
        }
    }

    /// The tiled parallel wavefront sweep behind [`Kernel::Tiled`]:
    /// multi-core propagation *inside* a single simulation, bit-identical
    /// to [`FireSim::run_dijkstra`] by construction.
    ///
    /// The bucket queue is processed in **epochs** — runs of consecutive
    /// bucket levels bundled until at least [`TILE_GRAIN`] frontier entries
    /// are in hand. Each epoch runs in two phases:
    ///
    /// 1. **Parallel drain** (defer-all): the epoch's entries are grouped
    ///    by spatial tile (`tile × tile` blocks of the active window, pop
    ///    order within each tile) and the tiles drain concurrently via
    ///    [`parworker::scoped_for_each_mut`]. A drain never writes the
    ///    raster: it precomputes each pop's candidate arrivals — pure
    ///    functions of `(t, spread table, geometry)` — into a per-tile
    ///    outbox ([`drain_tile`]).
    /// 2. **Sequential merge**: a k-way merge over the tile outboxes
    ///    replays the candidate groups in the *exact global pop order* of
    ///    the reference heap (ascending time, ties by descending index),
    ///    re-checking staleness against the live raster before every
    ///    write. Arrivals that quantize past the epoch's last bucket are
    ///    staged back into the queue; arrivals landing *inside* the epoch
    ///    (in-epoch cascades) are pushed into the same merge frontier and
    ///    relaxed fully by the merge itself, exactly where the heap would
    ///    pop them.
    ///
    /// **Why this is exact.** The merge applies writes in the same strict
    /// `(time, index)` total order the reference heap realizes, and every
    /// apply re-checks the raster-dependent conditions at that point, so
    /// by induction each apply sees the raster in precisely the state the
    /// heap would have at the corresponding pop — every relaxation
    /// decision, every `SMIDGEN` comparison, every `f64` write is
    /// literally identical. The drain's pre-filters discard only entries
    /// the heap would also discard (see [`drain_tile`]); candidate
    /// *values* are raster-independent, so computing them early and in
    /// parallel changes nothing. Epoch boundaries are a pure scheduling
    /// choice — any partition of the pop sequence yields the same raster —
    /// which is what lets the kernel bundle levels adaptively. The
    /// `kernel_equivalence` property suite and the in-run digest checks of
    /// `harness landscape` pin this with exact raster-bit comparisons.
    #[allow(clippy::too_many_arguments)]
    fn run_tiled(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
        arena: &mut SimArena,
        tile: usize,
        workers: usize,
    ) {
        assert!(tile > 0, "tile size must be non-zero");
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let rows = self.terrain.rows();
        let cols = self.terrain.cols();
        assert_eq!(
            (initial.rows(), initial.cols()),
            (rows, cols),
            "initial fire line shape mismatch"
        );
        assert!(
            t0.is_finite() && t0 >= 0.0,
            "t0 must be a non-negative instant"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be positive"
        );

        let SimArena {
            spread,
            per_fuel,
            queue,
            seeds,
            span_lo,
            span_hi,
            stray,
            dirty,
            tiles,
            epoch,
            keyed,
            tile_ranges,
            merge,
            out,
            ..
        } = arena;
        let out = out.get_or_insert_with(|| IgnitionMap::unignited(rows, cols));
        reset_raster(dirty, out, span_lo, span_hi, stray, cols);

        let t_end = t0 + duration;
        let cell_ft = self.terrain.cell_size_ft();

        let fuel_slice = self.terrain.fuel_layer().map(|g| g.as_slice());
        let scenario_burnable = fuel_slice.is_none() && self.beds[scenario.model as usize].burnable;
        let burnable_at = |idx: usize| -> bool {
            match fuel_slice {
                Some(f) => self.beds[f[idx] as usize].burnable,
                None => scenario_burnable,
            }
        };

        // Seeds + bounding box, exactly as the bucket kernel.
        seeds.clear();
        let (mut br0, mut bc0, mut br1, mut bc1) = (usize::MAX, usize::MAX, 0usize, 0usize);
        for (idx, &lit) in initial.mask().as_slice().iter().enumerate() {
            if !lit || !burnable_at(idx) {
                continue;
            }
            seeds.push(idx as u32);
            let (r, c) = (idx / cols, idx % cols);
            br0 = br0.min(r);
            bc0 = bc0.min(c);
            br1 = br1.max(r);
            bc1 = bc1.max(c);
        }
        if seeds.is_empty() {
            return; // nothing written; the raster stays clean
        }

        // Active-front window, same bound and inflation as the bucket
        // kernel (see `run_bucket` for the soundness argument).
        let reach = {
            let cap = self.spread_rate_bound(scenario);
            if cap <= SMIDGEN {
                0
            } else {
                let cells = (cap * duration / cell_ft * (1.0 + 1e-9)).ceil() + 2.0;
                cells.min(rows.max(cols) as f64) as usize
            }
        };
        let win = {
            let r0 = br0.saturating_sub(reach);
            let c0 = bc0.saturating_sub(reach);
            let r1 = (br1 + reach).min(rows - 1);
            let c1 = (bc1 + reach).min(cols - 1);
            Window {
                r0,
                c0,
                rows: r1 - r0 + 1,
                cols: c1 - c0 + 1,
            }
        };

        span_lo.clear();
        span_lo.resize(win.rows, u32::MAX);
        span_hi.clear();
        span_hi.resize(win.rows, 0);

        // Table resolution mirrors the bucket kernel; the per-cell gather
        // is the one place tiling parallelizes *outside* the sweep (row
        // bands, bit-identical to the serial fill).
        let mut percell_base: Option<[(f64, f64); 14]> = None;
        let tables: Tables<'_> = if !self.terrain.has_overrides() {
            Tables::Uniform(self.cell_spread(0, 0, scenario).compass_ros())
        } else if self.terrain.fuel_is_only_override() {
            let moisture = scenario.moisture();
            for (code, table) in per_fuel.iter_mut().enumerate() {
                *table = self.fuel_table(code, scenario, &moisture);
            }
            let fuel = self
                .terrain
                .fuel_layer()
                // audit: allow(panic) — fuel_is_only_override() just returned true, which requires a fuel layer
                .expect("fuel_is_only_override implies a fuel layer")
                .as_slice();
            Tables::PerFuel(per_fuel, fuel)
        } else {
            let moisture = scenario.moisture();
            let base = self.hoisted_base(&moisture);
            self.fill_per_cell_window_par(scenario, spread, &win, &base, workers);
            percell_base = Some(base);
            Tables::PerCell(&spread.per_cell)
        };
        let resolve_table = |idx: usize, r: usize, c: usize| -> [f64; 8] {
            match &tables {
                Tables::Uniform(table) => *table,
                Tables::PerFuel(by_code, fuel) => by_code[fuel[idx] as usize],
                Tables::PerCell(cells) => {
                    if win.contains(r, c) {
                        cells[win.local(r, c)]
                    } else {
                        self.cell_table_at(
                            r,
                            c,
                            scenario,
                            // audit: allow(panic) — percell_base is always set by the PerCell branch that selects this closure
                            percell_base.as_ref().expect("per-cell mode keeps the base"),
                        )
                    }
                }
            }
        };

        queue.reset(t0, duration);
        for &sidx in seeds.iter() {
            let (r, c) = (sidx as usize / cols, sidx as usize % cols);
            out.set_time(r, c, t0);
            // Seeds are inside the bounding box, hence inside the window.
            let wr = r - win.r0;
            span_lo[wr] = span_lo[wr].min(c as u32);
            span_hi[wr] = span_hi[wr].max(c as u32);
            queue.stage(t0, sidx);
        }
        *dirty = Dirty::Spans {
            r0: win.r0,
            rows: win.rows,
        };

        // Tile ownership of a cell: its `tile × tile` block of the active
        // window, strays clamped to the nearest window cell (deterministic
        // and cheap; strays are a floating-point-slack corner case).
        let tiles_x = win.cols.div_ceil(tile);
        let tile_of = |idx: u32| -> u32 {
            let (r, c) = ((idx as usize) / cols, (idx as usize) % cols);
            let wr = r.clamp(win.r0, win.r0 + win.rows - 1) - win.r0;
            let wc = c.clamp(win.c0, win.c0 + win.cols - 1) - win.c0;
            ((wr / tile) * tiles_x + wc / tile) as u32
        };
        // Merge-frontier source marker for in-epoch cascade entries.
        const CASCADE: u32 = u32::MAX;

        // The realized apply order is the kernel-equivalence contract:
        // ascending time, ties broken by larger cell index, across epoch
        // boundaries too (a later bucket strictly implies a later time).
        // Audited in debug builds.
        #[cfg(debug_assertions)]
        let mut prev_pop: Option<(f64, u32)> = None;
        while let Some(k_end) = queue.take_levels(TILE_GRAIN, epoch) {
            // Group the epoch by (tile, pop order): one sorted keyed pass
            // so the comparator stays division-free.
            keyed.clear();
            keyed.extend(epoch.iter().map(|&(t, idx)| (tile_of(idx), t, idx)));
            keyed.sort_unstable_by(|a, b| {
                a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(b.2.cmp(&a.2))
            });
            tile_ranges.clear();
            let mut start = 0usize;
            for i in 1..=keyed.len() {
                if i == keyed.len() || keyed[i].0 != keyed[start].0 {
                    tile_ranges.push((start as u32, i as u32));
                    start = i;
                }
            }
            let n_active = tile_ranges.len();
            if tiles.len() < n_active {
                tiles.resize_with(n_active, TileScratch::default);
            }

            // Phase 1 — parallel drain into per-tile outboxes. Reads the
            // raster, never writes it. Tiny epochs drain inline.
            {
                let out_r: &IgnitionMap = out;
                let entries: &[(u32, f64, u32)] = keyed;
                let ranges_r: &[(u32, u32)] = tile_ranges;
                let eff_workers = if epoch.len() < TILE_INLINE {
                    1
                } else {
                    workers
                };
                parworker::scoped_for_each_mut(eff_workers, &mut tiles[..n_active], 1, |i, ts| {
                    let (s, e) = ranges_r[i];
                    drain_tile(
                        ts,
                        &entries[s as usize..e as usize],
                        out_r,
                        rows,
                        cols,
                        cell_ft,
                        t_end,
                        &resolve_table,
                        &burnable_at,
                    );
                });
            }

            // Phase 2 — sequential ordered merge: replay the epoch's pops
            // in exact reference order, re-checking every raster-dependent
            // condition against the live raster.
            merge.clear();
            for (slot, ts) in tiles[..n_active].iter().enumerate() {
                if let Some(g) = ts.groups.first() {
                    merge.push((Reverse(Time(g.t)), g.idx, slot as u32));
                }
            }
            while let Some((Reverse(Time(t)), idx, src)) = merge.pop() {
                #[cfg(debug_assertions)]
                {
                    if let Some((pt, pi)) = prev_pop {
                        debug_assert!(
                            pt < t || (pt == t && pi >= idx),
                            "tiled merge order regressed: ({pt}, {pi}) then ({t}, {idx})"
                        );
                    }
                    prev_pop = Some((t, idx));
                }
                if src == CASCADE {
                    // An arrival generated inside this epoch: relax it
                    // fully here, exactly where the heap would pop it.
                    let ci = idx as usize;
                    let (r, c) = (ci / cols, ci % cols);
                    if t > out.time(r, c) + SMIDGEN {
                        continue; // stale entry
                    }
                    let table = resolve_table(ci, r, c);
                    for (dir, &(dr, dc, dist_factor)) in
                        landscape::NEIGHBOUR_OFFSETS.iter().enumerate()
                    {
                        let (nr, nc) = (r as isize + dr, c as isize + dc);
                        if nr < 0 || nc < 0 || nr as usize >= rows || nc as usize >= cols {
                            continue;
                        }
                        let (nr, nc) = (nr as usize, nc as usize);
                        let ros = table[dir];
                        if ros <= SMIDGEN {
                            continue;
                        }
                        let arrival = t + dist_factor * cell_ft / ros;
                        if arrival > t_end || arrival >= out.time(nr, nc) - SMIDGEN {
                            continue;
                        }
                        let nidx = nr * cols + nc;
                        if !burnable_at(nidx) {
                            continue;
                        }
                        out.set_time(nr, nc, arrival);
                        if win.contains(nr, nc) {
                            let wr = nr - win.r0;
                            span_lo[wr] = span_lo[wr].min(nc as u32);
                            span_hi[wr] = span_hi[wr].max(nc as u32);
                        } else {
                            stray.push(nidx as u32);
                        }
                        if queue.bucket_of(arrival) <= k_end {
                            merge.push((Reverse(Time(arrival)), nidx as u32, CASCADE));
                        } else {
                            queue.stage(arrival, nidx as u32);
                        }
                    }
                } else {
                    // Head group of tile `src`: advance the tile cursor,
                    // refill the frontier, then apply the group.
                    let slot = src as usize;
                    let ts = &mut tiles[slot];
                    let g = ts.groups[ts.head];
                    ts.head += 1;
                    if let Some(n) = ts.groups.get(ts.head) {
                        merge.push((Reverse(Time(n.t)), n.idx, src));
                    }
                    let ci = g.idx as usize;
                    let (r, c) = (ci / cols, ci % cols);
                    if g.t > out.time(r, c) + SMIDGEN {
                        continue; // went stale since the drain snapshot
                    }
                    for &(arrival, nidx) in &g.cand[..g.len as usize] {
                        let (nr, nc) = (nidx as usize / cols, nidx as usize % cols);
                        if arrival >= out.time(nr, nc) - SMIDGEN {
                            continue; // beaten since the drain snapshot
                        }
                        out.set_time(nr, nc, arrival);
                        if win.contains(nr, nc) {
                            let wr = nr - win.r0;
                            span_lo[wr] = span_lo[wr].min(nc as u32);
                            span_hi[wr] = span_hi[wr].max(nc as u32);
                        } else {
                            stray.push(nidx);
                        }
                        if queue.bucket_of(arrival) <= k_end {
                            merge.push((Reverse(Time(arrival)), nidx, CASCADE));
                        } else {
                            queue.stage(arrival, nidx);
                        }
                    }
                }
            }
        }
    }

    /// Convenience: simulates and returns the fire line at the end of the
    /// horizon (burned cells at `t0 + duration`).
    pub fn simulate_fire_line(
        &self,
        scenario: &Scenario,
        initial: &FireLine,
        t0: f64,
        duration: f64,
    ) -> FireLine {
        self.simulate(scenario, initial, t0, duration)
            .fire_line_at(t0 + duration)
    }

    /// Maximum spread rate (ft/min) of `scenario` on a uniform cell of this
    /// terrain — exposed for workload sizing in the benches.
    pub fn max_ros(&self, scenario: &Scenario) -> f64 {
        self.cell_spread(0, 0, scenario).ros_max
    }
}

/// Builds the single-cell ignition used by most examples: the map centre
/// burning at `t = 0`.
pub fn centre_ignition(rows: usize, cols: usize) -> FireLine {
    FireLine::from_cells(rows, cols, &[(rows / 2, cols / 2)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use landscape::{Grid, UNIGNITED};

    fn flat_sim(n: usize) -> FireSim {
        FireSim::new(Terrain::uniform(n, n, 100.0))
    }

    fn calm_scenario() -> Scenario {
        Scenario {
            wind_speed_mph: 0.0,
            slope_deg: 0.0,
            ..Scenario::reference()
        }
    }

    /// A layered 2-overrides terrain exercising the per-cell table path.
    fn layered_sim(rows: usize, cols: usize) -> FireSim {
        let fuel = Grid::from_fn(rows, cols, |r, c| [1u8, 2, 4, 0][(r * 3 + c) % 4]);
        let slope = Grid::from_fn(rows, cols, |r, c| ((r * 7 + c * 5) % 35) as f64);
        FireSim::new(
            Terrain::uniform(rows, cols, 100.0)
                .with_fuel(fuel)
                .with_slope(slope),
        )
    }

    #[test]
    fn fire_grows_from_ignition_point() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 300.0);
        assert_eq!(map.time(10, 10), 0.0);
        assert!(
            map.burned_count_at(300.0) > 1,
            "fire must spread beyond the ignition"
        );
    }

    #[test]
    fn calm_flat_fire_is_symmetric() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 500.0);
        for d in 1..=5usize {
            let north = map.time(10 - d, 10);
            let south = map.time(10 + d, 10);
            let east = map.time(10, 10 + d);
            let west = map.time(10, 10 - d);
            assert!((north - south).abs() < 1e-9);
            assert!((east - west).abs() < 1e-9);
            assert!((north - east).abs() < 1e-9);
        }
    }

    #[test]
    fn ignition_times_increase_with_distance() {
        let sim = flat_sim(21);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(21, 21), 0.0, 2000.0);
        let mut prev = 0.0;
        for d in 1..=8usize {
            let t = map.time(10, 10 + d);
            assert!(t > prev, "time must increase along a ray");
            prev = t;
        }
    }

    #[test]
    fn wind_skews_fire_downwind() {
        let sim = flat_sim(31);
        let scenario = Scenario {
            wind_speed_mph: 10.0,
            wind_dir_deg: 90.0,
            ..calm_scenario()
        };
        let map = sim.simulate(&scenario, &centre_ignition(31, 31), 0.0, 120.0);
        // Wind blows east: the eastern cell ignites earlier than the western.
        let east = map.time(15, 20);
        let west = map.time(15, 10);
        assert!(east < west, "east {east} < west {west} expected");
    }

    #[test]
    fn slope_skews_fire_upslope() {
        let sim = flat_sim(31);
        // Aspect 180° (south-facing) → upslope north (decreasing row).
        let scenario = Scenario {
            slope_deg: 30.0,
            aspect_deg: 180.0,
            ..calm_scenario()
        };
        let map = sim.simulate(&scenario, &centre_ignition(31, 31), 0.0, 300.0);
        let north = map.time(10, 15);
        let south = map.time(20, 15);
        assert!(north < south, "north {north} < south {south} expected");
    }

    #[test]
    fn horizon_bounds_ignition_times() {
        let sim = flat_sim(41);
        let map = sim.simulate(&calm_scenario(), &centre_ignition(41, 41), 0.0, 60.0);
        for ((_, _), &t) in map.grid().iter_cells() {
            assert!(t == UNIGNITED || t <= 60.0 + 1e-9);
        }
    }

    #[test]
    fn longer_horizon_extends_shorter_map() {
        let sim = flat_sim(31);
        let s = calm_scenario();
        let short = sim.simulate(&s, &centre_ignition(31, 31), 0.0, 100.0);
        let long = sim.simulate(&s, &centre_ignition(31, 31), 0.0, 300.0);
        for r in 0..31 {
            for c in 0..31 {
                if short.time(r, c) != UNIGNITED {
                    assert!((short.time(r, c) - long.time(r, c)).abs() < 1e-9);
                }
            }
        }
        assert!(long.burned_count_at(300.0) > short.burned_count_at(100.0));
    }

    #[test]
    fn t0_offsets_all_times() {
        let sim = flat_sim(21);
        let s = calm_scenario();
        let at0 = sim.simulate(&s, &centre_ignition(21, 21), 0.0, 200.0);
        let at50 = sim.simulate(&s, &centre_ignition(21, 21), 50.0, 200.0);
        for r in 0..21 {
            for c in 0..21 {
                if at0.time(r, c) != UNIGNITED {
                    assert!((at50.time(r, c) - (at0.time(r, c) + 50.0)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn firebreak_stops_spread() {
        // A vertical stripe of no-fuel cells splits the map; fire ignited on
        // the left must never reach the right side.
        let mut fuel = Grid::filled(15, 15, 1u8);
        for r in 0..15 {
            fuel.set(r, 7, 0);
        }
        let sim = FireSim::new(Terrain::uniform(15, 15, 100.0).with_fuel(fuel));
        let ignition = FireLine::from_cells(15, 15, &[(7, 2)]);
        let map = sim.simulate(&calm_scenario(), &ignition, 0.0, 1e5);
        for r in 0..15 {
            assert_eq!(map.time(r, 7), UNIGNITED, "firebreak cell ({r},7) ignited");
            for c in 8..15 {
                assert_eq!(
                    map.time(r, c),
                    UNIGNITED,
                    "cell ({r},{c}) behind the break ignited"
                );
            }
        }
        assert!(map.burned_count_at(1e5) > 10);
    }

    #[test]
    fn damp_fuel_never_ignites_neighbours() {
        let sim = flat_sim(11);
        let scenario = Scenario {
            m1_pct: 30.0,
            m10_pct: 30.0,
            m100_pct: 30.0,
            ..calm_scenario()
        }; // far beyond model 1 extinction (12 %)
        let map = sim.simulate(&scenario, &centre_ignition(11, 11), 0.0, 1e6);
        assert_eq!(
            map.burned_count_at(1e6),
            1,
            "only the ignition cell may burn"
        );
    }

    #[test]
    fn unburnable_ignition_cell_is_ignored() {
        let mut fuel = Grid::filled(5, 5, 1u8);
        fuel.set(2, 2, 0);
        let sim = FireSim::new(Terrain::uniform(5, 5, 100.0).with_fuel(fuel));
        let map = sim.simulate(&calm_scenario(), &centre_ignition(5, 5), 0.0, 1e4);
        assert_eq!(map.burned_count_at(1e4), 0);
    }

    #[test]
    fn simulate_into_reuses_buffer_and_matches() {
        let sim = flat_sim(15);
        let s = calm_scenario();
        let fresh = sim.simulate(&s, &centre_ignition(15, 15), 0.0, 150.0);
        let mut reused = IgnitionMap::unignited(15, 15);
        // Pre-pollute to prove it clears.
        reused.set_time(0, 0, 1.0);
        sim.simulate_into(&s, &centre_ignition(15, 15), 0.0, 150.0, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn arena_matches_simulate_and_is_reusable() {
        let mut fuel = Grid::filled(17, 17, 1u8);
        for r in 0..17 {
            fuel.set(r, 5, 4);
            fuel.set(r, 11, 0);
        }
        let sim = FireSim::new(Terrain::uniform(17, 17, 100.0).with_fuel(fuel));
        let s = Scenario {
            wind_speed_mph: 9.0,
            ..calm_scenario()
        };
        let mut arena = sim.arena();
        for (t0, dur) in [(0.0, 120.0), (10.0, 300.0), (0.0, 50.0)] {
            let fresh = sim.simulate(&s, &centre_ignition(17, 17), t0, dur);
            let via_arena = sim.simulate_arena(&s, &centre_ignition(17, 17), t0, dur, &mut arena);
            assert_eq!(&fresh, via_arena, "t0={t0} dur={dur}");
        }
    }

    #[test]
    fn arena_reuse_across_moving_ignitions_resets_correctly() {
        // Successive runs with disjoint ignition sites: the dirty-span reset
        // must leave no residue from the previous burn anywhere.
        let sim = layered_sim(33, 47);
        let s = Scenario {
            wind_speed_mph: 6.0,
            ..Scenario::reference()
        };
        let mut arena = sim.arena();
        let ignitions = [
            FireLine::from_cells(33, 47, &[(3, 3)]),
            FireLine::from_cells(33, 47, &[(30, 44)]),
            FireLine::from_cells(33, 47, &[(16, 23), (2, 40)]),
            FireLine::from_cells(33, 47, &[(3, 3)]),
        ];
        for (i, ign) in ignitions.iter().enumerate() {
            let fresh = sim.simulate(&s, ign, 0.0, 90.0);
            let via_arena = sim.simulate_arena(&s, ign, 0.0, 90.0, &mut arena);
            assert_eq!(&fresh, via_arena, "run {i} diverged");
        }
    }

    #[test]
    fn bucket_kernel_matches_heap_kernel_exactly() {
        // Both kernels over the same arena API, raster compared bit-exact.
        let sims = [
            flat_sim(25),
            layered_sim(25, 25),
            FireSim::new(
                Terrain::uniform(25, 25, 80.0)
                    .with_wind(
                        Grid::from_fn(25, 25, |r, c| 0.25 + ((r + 2 * c) % 7) as f64 * 0.3),
                        Grid::from_fn(25, 25, |r, c| ((r * c) % 90) as f64 - 45.0),
                    )
                    .with_aspect(Grid::from_fn(25, 25, |r, c| {
                        ((r * 13 + c * 29) % 360) as f64
                    })),
            ),
        ];
        let s = Scenario {
            wind_speed_mph: 8.0,
            wind_dir_deg: 45.0,
            ..Scenario::reference()
        };
        let ignition = FireLine::from_cells(25, 25, &[(12, 12), (3, 20)]);
        for sim in &sims {
            let mut heap_arena = sim.arena();
            let mut bucket_arena = sim.arena();
            for dur in [30.0, 240.0, 2000.0] {
                let h = sim
                    .simulate_arena_kernel(&s, &ignition, 0.0, dur, &mut heap_arena, Kernel::Heap)
                    .clone();
                let b = sim.simulate_arena_kernel(
                    &s,
                    &ignition,
                    0.0,
                    dur,
                    &mut bucket_arena,
                    Kernel::Bucket,
                );
                for (ht, bt) in h.grid().as_slice().iter().zip(b.grid().as_slice()) {
                    assert_eq!(ht.to_bits(), bt.to_bits(), "kernels diverged at dur={dur}");
                }
            }
        }
    }

    #[test]
    fn kernels_interleave_on_one_arena() {
        // A heap run marks the raster fully dirty; the following bucket run
        // must still reset correctly (Dirty::All path).
        let sim = layered_sim(21, 21);
        let s = Scenario::reference();
        let mut arena = sim.arena();
        let big = FireLine::from_cells(21, 21, &[(10, 10)]);
        sim.simulate_arena_kernel(&s, &big, 0.0, 5000.0, &mut arena, Kernel::Heap);
        let small = FireLine::from_cells(21, 21, &[(2, 2)]);
        let fresh = sim.simulate(&s, &small, 0.0, 40.0);
        let via_arena =
            sim.simulate_arena_kernel(&s, &small, 0.0, 40.0, &mut arena, Kernel::Bucket);
        assert_eq!(&fresh, via_arena);
    }

    #[test]
    fn fallback_cell_table_matches_gathered_fill() {
        // The lazy out-of-window fallback must reproduce the SoA fill
        // bit-for-bit on every cell (it is the safety net that keeps the
        // window bound a performance decision, not a correctness one).
        let sim = FireSim::new(
            Terrain::uniform(9, 13, 100.0)
                .with_fuel(Grid::from_fn(9, 13, |r, c| [1u8, 4, 8, 0][(r + c) % 4]))
                .with_slope(Grid::from_fn(9, 13, |r, c| ((r * 5 + c * 3) % 40) as f64))
                .with_wind(
                    Grid::from_fn(9, 13, |r, c| ((r + c) % 5) as f64 * 0.5),
                    Grid::from_fn(9, 13, |r, c| ((r * c) % 60) as f64),
                ),
        );
        let s = Scenario {
            wind_speed_mph: 11.0,
            wind_dir_deg: 210.0,
            ..Scenario::reference()
        };
        let mut scratch = SpreadScratch::default();
        sim.fill_per_cell(&s, &mut scratch);
        let base = sim.hoisted_base(&s.moisture());
        for r in 0..9 {
            for c in 0..13 {
                let lazy = sim.cell_table_at(r, c, &s, &base);
                let gathered = scratch.per_cell[r * 13 + c];
                for d in 0..8 {
                    assert_eq!(
                        lazy[d].to_bits(),
                        gathered[d].to_bits(),
                        "cell ({r},{c}) dir {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn spread_rate_bound_dominates_every_cell() {
        let sim = layered_sim(19, 19);
        let s = Scenario {
            wind_speed_mph: 9.0,
            ..Scenario::reference()
        };
        let bound = sim.spread_rate_bound(&s);
        let mut scratch = SpreadScratch::default();
        sim.fill_per_cell(&s, &mut scratch);
        for (idx, table) in scratch.per_cell.iter().enumerate() {
            for (d, &ros) in table.iter().enumerate() {
                assert!(
                    ros <= bound * (1.0 + 1e-12),
                    "cell {idx} dir {d}: ros {ros} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn lazy_arena_allocates_nothing_until_first_run() {
        let arena = SimArena::new(1000, 1000);
        assert_eq!(arena.scratch_bytes(), 0, "scratch allocated eagerly");
        assert_eq!(arena.raster_bytes(), 0, "raster allocated eagerly");
        assert_eq!(arena.heap_capacity(), 0, "heap preallocated");
    }

    #[test]
    #[should_panic(expected = "no simulation has run")]
    fn fresh_arena_map_panics() {
        let arena = SimArena::new(4, 4);
        let _ = arena.map();
    }

    #[test]
    fn window_bounds_scratch_on_large_grid() {
        // A short burn in the middle of a big per-cell terrain: scratch
        // must track the active window, not the raster.
        let n = 201usize;
        let sim = FireSim::new(Terrain::uniform(n, n, 100.0).with_slope(Grid::from_fn(
            n,
            n,
            |r, c| ((r + c) % 30) as f64,
        )));
        let s = calm_scenario();
        let mut arena = sim.arena();
        let via_arena = sim
            .simulate_arena(&s, &centre_ignition(n, n), 0.0, 30.0, &mut arena)
            .clone();
        let full_tables = n * n * std::mem::size_of::<[f64; 8]>();
        assert!(
            arena.scratch_bytes() < full_tables / 4,
            "scratch {} not window-bounded (full tables {})",
            arena.scratch_bytes(),
            full_tables
        );
        let fresh = sim.simulate(&s, &centre_ignition(n, n), 0.0, 30.0);
        assert_eq!(fresh, via_arena);
    }

    #[test]
    fn arena_is_allocation_free_in_steady_state() {
        // Two table modes: a slope terrain (per-cell path, the worst case
        // for buffer growth) and a fuel-only mosaic (per-fuel path, whose
        // tables live inline in the arena). The warm-up pass runs every
        // duration once; the second identical pass must not move any
        // capacity (identical inputs → identical windows, bucket layouts
        // and frontier sizes).
        let n = 31usize;
        let slope = Grid::from_fn(n, n, |r, c| ((r + c) % 30) as f64);
        let fuel = Grid::from_fn(n, n, |r, c| [1u8, 2, 4][(r + c) % 3]);
        let sims = [
            FireSim::new(Terrain::uniform(n, n, 100.0).with_slope(slope)),
            FireSim::new(Terrain::uniform(n, n, 100.0).with_fuel(fuel)),
        ];
        let s = calm_scenario();
        let durations: Vec<f64> = (0..10).map(|i| 400.0 + i as f64).collect();
        for sim in &sims {
            let mut arena = sim.arena();
            for &d in &durations {
                sim.simulate_arena(&s, &centre_ignition(n, n), 0.0, d, &mut arena);
            }
            let spread_cap = arena.spread_capacity();
            let gather_cap = arena.gather_capacity();
            let scratch = arena.scratch_bytes();
            for &d in &durations {
                sim.simulate_arena(&s, &centre_ignition(n, n), 0.0, d, &mut arena);
                assert_eq!(arena.spread_capacity(), spread_cap, "spread cache grew");
                assert_eq!(arena.gather_capacity(), gather_cap, "gather buffers grew");
                assert_eq!(arena.scratch_bytes(), scratch, "arena scratch grew");
            }
        }
    }

    #[test]
    fn out_of_catalog_model_is_ignored_when_fuel_layer_overrides_it() {
        // With a fuel layer the scenario's global model is never consulted,
        // so even an out-of-catalog value must not panic.
        let fuel = Grid::filled(7, 7, 1u8);
        let sim = FireSim::new(Terrain::uniform(7, 7, 100.0).with_fuel(fuel));
        let s = Scenario {
            model: 99,
            ..calm_scenario()
        };
        let map = sim.simulate(&s, &centre_ignition(7, 7), 0.0, 120.0);
        assert!(map.burned_count_at(120.0) > 1, "layered fuel must burn");
    }

    #[test]
    fn cloned_sim_shares_terrain() {
        let sim = FireSim::new(Terrain::uniform(9, 9, 100.0));
        let clone = sim.clone();
        assert!(Arc::ptr_eq(&sim.terrain_shared(), &clone.terrain_shared()));
    }

    #[test]
    fn wind_layer_changes_propagation() {
        let n = 21usize;
        // Wind dead in the west half, doubled in the east half.
        let factor = Grid::from_fn(n, n, |_, c| if c < n / 2 { 0.0 } else { 2.0 });
        let offset = Grid::filled(n, n, 0.0);
        let sim = FireSim::new(Terrain::uniform(n, n, 100.0).with_wind(factor, offset));
        let s = Scenario {
            wind_speed_mph: 12.0,
            wind_dir_deg: 90.0,
            ..calm_scenario()
        };
        let map = sim.simulate(&s, &centre_ignition(n, n), 0.0, 60.0);
        let east = map.time(n / 2, n / 2 + 4);
        let west = map.time(n / 2, n / 2 - 4);
        assert!(
            east < west,
            "downwind east cell must ignite first ({east} vs {west})"
        );
    }

    #[test]
    fn fire_line_convenience_matches_map() {
        let sim = flat_sim(15);
        let s = calm_scenario();
        let map = sim.simulate(&s, &centre_ignition(15, 15), 0.0, 150.0);
        let fl = sim.simulate_fire_line(&s, &centre_ignition(15, 15), 0.0, 150.0);
        assert_eq!(fl, map.fire_line_at(150.0));
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let sim = flat_sim(5);
        let _ = sim.simulate(&calm_scenario(), &centre_ignition(5, 5), 0.0, 0.0);
    }

    /// Exact-bits comparison helper for kernel-equivalence tests.
    fn assert_rasters_identical(a: &IgnitionMap, b: &IgnitionMap, what: &str) {
        for (i, (x, y)) in a
            .grid()
            .as_slice()
            .iter()
            .zip(b.grid().as_slice())
            .enumerate()
        {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: cell {i} diverged");
        }
    }

    #[test]
    fn tiled_kernel_matches_heap_across_table_modes_and_shapes() {
        // All three table modes (uniform, per-fuel, per-cell) on every
        // degenerate tile shape and worker count, exact raster bits.
        let sims = [
            flat_sim(25),
            FireSim::new(Terrain::uniform(25, 25, 100.0).with_fuel(Grid::from_fn(
                25,
                25,
                |r, c| [1u8, 2, 4, 0][(r * 3 + c) % 4],
            ))),
            layered_sim(25, 25),
        ];
        let s = Scenario {
            wind_speed_mph: 8.0,
            wind_dir_deg: 45.0,
            ..Scenario::reference()
        };
        let ignition = FireLine::from_cells(25, 25, &[(12, 12), (3, 20)]);
        for sim in &sims {
            let mut heap_arena = sim.arena();
            let mut tiled_arena = sim.arena();
            for (tile, workers) in [(1, 2), (3, 8), (7, 1), (64, 2), (1000, 8)] {
                for dur in [30.0, 240.0, 2000.0] {
                    let h = sim
                        .simulate_arena_kernel(
                            &s,
                            &ignition,
                            0.0,
                            dur,
                            &mut heap_arena,
                            Kernel::Heap,
                        )
                        .clone();
                    let t = sim.simulate_arena_kernel(
                        &s,
                        &ignition,
                        0.0,
                        dur,
                        &mut tiled_arena,
                        Kernel::Tiled { tile, workers },
                    );
                    assert_rasters_identical(
                        &h,
                        t,
                        &format!("tile={tile} workers={workers} dur={dur}"),
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_kernel_reuses_dirty_arena_and_interleaves_with_other_kernels() {
        // Heap run (full dirt) → tiled run must reset via Dirty::All; then
        // bucket and tiled alternate on the same arena with moving
        // ignitions, each pinned against a fresh reference run.
        let sim = layered_sim(33, 47);
        let s = Scenario {
            wind_speed_mph: 6.0,
            ..Scenario::reference()
        };
        let mut arena = sim.arena();
        sim.simulate_arena_kernel(
            &s,
            &FireLine::from_cells(33, 47, &[(16, 23)]),
            0.0,
            5000.0,
            &mut arena,
            Kernel::Heap,
        );
        let runs = [
            (
                Kernel::Tiled {
                    tile: 8,
                    workers: 2,
                },
                (3usize, 3usize),
            ),
            (Kernel::Bucket, (30, 44)),
            (
                Kernel::Tiled {
                    tile: 16,
                    workers: 8,
                },
                (16, 23),
            ),
            (
                Kernel::Tiled {
                    tile: 1,
                    workers: 2,
                },
                (2, 40),
            ),
        ];
        for (i, (kernel, cell)) in runs.iter().enumerate() {
            let ign = FireLine::from_cells(33, 47, &[*cell]);
            let fresh = sim.simulate(&s, &ign, 0.0, 90.0);
            let got = sim.simulate_arena_kernel(&s, &ign, 0.0, 90.0, &mut arena, *kernel);
            assert_rasters_identical(&fresh, got, &format!("interleaved run {i}"));
        }
    }

    #[test]
    fn parallel_window_fill_matches_serial() {
        let sim = FireSim::new(
            Terrain::uniform(140, 130, 100.0)
                .with_slope(Grid::from_fn(140, 130, |r, c| {
                    ((r * 5 + c * 3) % 40) as f64
                }))
                .with_wind(
                    Grid::from_fn(140, 130, |r, c| ((r + c) % 5) as f64 * 0.5),
                    Grid::from_fn(140, 130, |r, c| ((r * c) % 60) as f64),
                ),
        );
        let s = Scenario {
            wind_speed_mph: 11.0,
            wind_dir_deg: 210.0,
            ..Scenario::reference()
        };
        let base = sim.hoisted_base(&s.moisture());
        let win = Window {
            r0: 3,
            c0: 1,
            rows: 133,
            cols: 127,
        };
        let mut serial = SpreadScratch::default();
        sim.fill_per_cell_window(&s, &mut serial, &win, &base);
        for workers in [2, 8] {
            let mut par = SpreadScratch::default();
            sim.fill_per_cell_window_par(&s, &mut par, &win, &base, workers);
            assert_eq!(serial.per_cell.len(), par.per_cell.len());
            for (i, (a, b)) in serial.per_cell.iter().zip(&par.per_cell).enumerate() {
                for d in 0..8 {
                    assert_eq!(
                        a[d].to_bits(),
                        b[d].to_bits(),
                        "workers={workers} window cell {i} dir {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_arena_is_allocation_free_in_steady_state() {
        let n = 41usize;
        let slope = Grid::from_fn(n, n, |r, c| ((r + c) % 30) as f64);
        let sim = FireSim::new(Terrain::uniform(n, n, 100.0).with_slope(slope));
        let s = calm_scenario();
        let kernel = Kernel::Tiled {
            tile: 8,
            workers: 2,
        };
        let mut arena = sim.arena();
        let durations: Vec<f64> = (0..6).map(|i| 400.0 + i as f64).collect();
        for &d in &durations {
            sim.simulate_arena_kernel(&s, &centre_ignition(n, n), 0.0, d, &mut arena, kernel);
        }
        let scratch = arena.scratch_bytes();
        for &d in &durations {
            sim.simulate_arena_kernel(&s, &centre_ignition(n, n), 0.0, d, &mut arena, kernel);
            assert_eq!(arena.scratch_bytes(), scratch, "tiled arena scratch grew");
        }
    }

    #[test]
    #[should_panic(expected = "tile size must be non-zero")]
    fn tiled_zero_tile_rejected() {
        let sim = flat_sim(5);
        let mut arena = sim.arena();
        sim.simulate_arena_kernel(
            &calm_scenario(),
            &centre_ignition(5, 5),
            0.0,
            10.0,
            &mut arena,
            Kernel::Tiled {
                tile: 0,
                workers: 1,
            },
        );
    }

    #[test]
    fn kernel_spec_strings_round_trip() {
        let cases = [
            ("heap", Kernel::Heap),
            ("bucket", Kernel::Bucket),
            ("tiled", Kernel::tiled_auto()),
            (
                "tiled:64",
                Kernel::Tiled {
                    tile: 64,
                    workers: 0,
                },
            ),
            (
                "tiled:32x4",
                Kernel::Tiled {
                    tile: 32,
                    workers: 4,
                },
            ),
        ];
        for (spec, kernel) in cases {
            assert_eq!(spec.parse::<Kernel>().unwrap(), kernel, "parse {spec}");
            assert_eq!(
                kernel.to_string().parse::<Kernel>().unwrap(),
                kernel,
                "display round-trip {spec}"
            );
        }
        for bad in ["", "tile", "tiled:0", "tiled:8x", "tiled:x2", "bucket:4"] {
            assert!(bad.parse::<Kernel>().is_err(), "'{bad}' must not parse");
        }
    }
}
