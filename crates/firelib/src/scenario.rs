//! The scenario parameter space — Table I of the paper.
//!
//! A *scenario* ("a set of input parameters, also called a scenario",
//! paper §I) is the individual every metaheuristic in this workspace
//! evolves. This module defines the nine parameters with the exact ranges
//! and units of Table I, their normalised gene encoding, validation, and
//! uniform sampling.

use crate::moisture::MoistureRegime;
use crate::spread::SpreadInputs;
use crate::MPH_TO_FPM;
use rand::Rng;

/// Number of genes in the encoded scenario vector.
pub const GENE_COUNT: usize = 9;

/// Metadata for one scenario parameter — one row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamDef {
    /// Parameter name as printed in Table I.
    pub name: &'static str,
    /// Description as printed in Table I.
    pub description: &'static str,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// Unit of measurement as printed in Table I.
    pub unit: &'static str,
    /// `true` when the parameter takes integer values (the fuel model).
    pub integer: bool,
}

/// The nine rows of Table I, in the paper's order.
pub const PARAM_DEFS: [ParamDef; GENE_COUNT] = [
    ParamDef {
        name: "Model",
        description: "Rothermel Fuel Model",
        lo: 1.0,
        hi: 13.0,
        unit: "fuel model",
        integer: true,
    },
    ParamDef {
        name: "WindSpd",
        description: "Wind speed",
        lo: 0.0,
        hi: 80.0,
        unit: "miles/hour",
        integer: false,
    },
    ParamDef {
        name: "WindDir",
        description: "Wind direction",
        lo: 0.0,
        hi: 360.0,
        unit: "degrees clockwise from North",
        integer: false,
    },
    ParamDef {
        name: "M1",
        description: "Dead Fuel Moisture in 1 hour since start of fire",
        lo: 1.0,
        hi: 60.0,
        unit: "percent",
        integer: false,
    },
    ParamDef {
        name: "M10",
        description: "Dead Fuel Moisture in 10 h",
        lo: 1.0,
        hi: 60.0,
        unit: "percent",
        integer: false,
    },
    ParamDef {
        name: "M100",
        description: "Dead Fuel Moisture in 100 h",
        lo: 1.0,
        hi: 60.0,
        unit: "percent",
        integer: false,
    },
    ParamDef {
        name: "Mherb",
        description: "Live herbaceous fuel moisture",
        lo: 30.0,
        hi: 300.0,
        unit: "percent",
        integer: false,
    },
    ParamDef {
        name: "Slope",
        description: "Surface slope",
        lo: 0.0,
        hi: 81.0,
        unit: "degrees",
        integer: false,
    },
    ParamDef {
        name: "Aspect",
        description: "Direction of the surface faces",
        lo: 0.0,
        hi: 360.0,
        unit: "degrees clockwise from north",
        integer: false,
    },
];

/// One fire-environment scenario (an individual of the metaheuristics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Rothermel fuel model (1–13).
    pub model: u8,
    /// Wind speed (miles/hour).
    pub wind_speed_mph: f64,
    /// Wind direction, degrees clockwise from north (direction blown to).
    pub wind_dir_deg: f64,
    /// 1-hour dead fuel moisture (percent).
    pub m1_pct: f64,
    /// 10-hour dead fuel moisture (percent).
    pub m10_pct: f64,
    /// 100-hour dead fuel moisture (percent).
    pub m100_pct: f64,
    /// Live herbaceous fuel moisture (percent).
    pub mherb_pct: f64,
    /// Surface slope (degrees).
    pub slope_deg: f64,
    /// Aspect, degrees clockwise from north.
    pub aspect_deg: f64,
}

impl Scenario {
    /// A mild reference scenario (used by examples and as a neutral seed).
    pub fn reference() -> Self {
        Self {
            model: 1,
            wind_speed_mph: 5.0,
            wind_dir_deg: 90.0,
            m1_pct: 5.0,
            m10_pct: 7.0,
            m100_pct: 9.0,
            mherb_pct: 100.0,
            slope_deg: 0.0,
            aspect_deg: 0.0,
        }
    }

    /// The moisture regime implied by this scenario. Table I has no live
    /// woody moisture, so `Mherb` feeds both live classes (see
    /// [`MoistureRegime`] docs for why this is a faithful substitution).
    pub fn moisture(&self) -> MoistureRegime {
        MoistureRegime::from_percent(
            self.m1_pct,
            self.m10_pct,
            self.m100_pct,
            self.mherb_pct,
            self.mherb_pct,
        )
    }

    /// Wind/slope spread inputs implied by this scenario (global values; the
    /// terrain may override slope/aspect per cell).
    pub fn spread_inputs(&self) -> SpreadInputs {
        SpreadInputs {
            wind_fpm: self.wind_speed_mph * MPH_TO_FPM,
            wind_azimuth: self.wind_dir_deg,
            slope_steepness: self.slope_deg.to_radians().tan(),
            aspect_azimuth: self.aspect_deg,
        }
    }

    /// The parameter values in Table I order.
    pub fn values(&self) -> [f64; GENE_COUNT] {
        [
            self.model as f64,
            self.wind_speed_mph,
            self.wind_dir_deg,
            self.m1_pct,
            self.m10_pct,
            self.m100_pct,
            self.mherb_pct,
            self.slope_deg,
            self.aspect_deg,
        ]
    }

    /// `true` when every parameter lies inside its Table I range.
    pub fn is_valid(&self) -> bool {
        self.values()
            .iter()
            .zip(&PARAM_DEFS)
            .all(|(&v, d)| v.is_finite() && v >= d.lo && v <= d.hi)
    }
}

/// The search space over scenarios: encode/decode/sample helpers shared by
/// every metaheuristic. Genes are `f64` in `[0, 1]`; gene `i` maps linearly
/// onto the range of `PARAM_DEFS[i]` (the fuel model rounds to an integer).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioSpace;

impl ScenarioSpace {
    /// Number of genes.
    pub fn dimensions(&self) -> usize {
        GENE_COUNT
    }

    /// Parameter metadata (Table I).
    pub fn params(&self) -> &'static [ParamDef; GENE_COUNT] {
        &PARAM_DEFS
    }

    /// Decodes a normalised gene vector into a scenario. Genes are clamped
    /// to `[0, 1]` first, so any real vector decodes to a valid scenario.
    ///
    /// # Panics
    /// Panics when `genes.len() != GENE_COUNT`.
    pub fn decode(&self, genes: &[f64]) -> Scenario {
        assert_eq!(
            genes.len(),
            GENE_COUNT,
            "scenario gene vector must have {GENE_COUNT} entries"
        );
        let g = |i: usize| -> f64 {
            let v = genes[i];
            if v.is_nan() {
                0.0
            } else {
                v.clamp(0.0, 1.0)
            }
        };
        let lerp = |i: usize| PARAM_DEFS[i].lo + g(i) * (PARAM_DEFS[i].hi - PARAM_DEFS[i].lo);
        // Model: split [0,1] into 13 equal bins → 1..=13.
        let model = (1.0 + (g(0) * 13.0).floor()).min(13.0) as u8;
        Scenario {
            model,
            wind_speed_mph: lerp(1),
            wind_dir_deg: lerp(2),
            m1_pct: lerp(3),
            m10_pct: lerp(4),
            m100_pct: lerp(5),
            mherb_pct: lerp(6),
            slope_deg: lerp(7),
            aspect_deg: lerp(8),
        }
    }

    /// Encodes a scenario into its normalised gene vector. The fuel model
    /// encodes to the centre of its bin, so `decode(encode(s))` restores the
    /// model exactly.
    pub fn encode(&self, s: &Scenario) -> [f64; GENE_COUNT] {
        let inv = |i: usize, v: f64| (v - PARAM_DEFS[i].lo) / (PARAM_DEFS[i].hi - PARAM_DEFS[i].lo);
        [
            (s.model as f64 - 0.5) / 13.0,
            inv(1, s.wind_speed_mph),
            inv(2, s.wind_dir_deg),
            inv(3, s.m1_pct),
            inv(4, s.m10_pct),
            inv(5, s.m100_pct),
            inv(6, s.mherb_pct),
            inv(7, s.slope_deg),
            inv(8, s.aspect_deg),
        ]
    }

    /// Uniformly samples a gene vector.
    pub fn sample_genes<R: Rng + ?Sized>(&self, rng: &mut R) -> [f64; GENE_COUNT] {
        std::array::from_fn(|_| rng.random::<f64>())
    }

    /// Uniformly samples a scenario.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Scenario {
        self.decode(&self.sample_genes(rng))
    }

    /// Normalised genotypic distance between two gene vectors: Euclidean
    /// distance divided by √dim, so the result lies in `[0, 1]`. Used by the
    /// diversity metrics (E2) and the genotypic-behaviour ablation.
    pub fn gene_distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), GENE_COUNT);
        assert_eq!(b.len(), GENE_COUNT);
        let sq: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x.clamp(0.0, 1.0) - y.clamp(0.0, 1.0);
                d * d
            })
            .sum();
        (sq / GENE_COUNT as f64).sqrt()
    }
}

/// Renders Table I as an aligned text table (used by the report harness to
/// regenerate the paper's Table I verbatim from the in-code definitions).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<52} {:<10} {}\n",
        "Param", "Description", "Range", "Unit"
    ));
    for d in &PARAM_DEFS {
        let range = if d.integer {
            format!("{}-{}", d.lo as i64, d.hi as i64)
        } else if d.lo == 0.0 && d.hi.fract() == 0.0 {
            format!("0-{}", d.hi as i64)
        } else if d.lo.fract() == 0.0 && d.hi.fract() == 0.0 {
            format!("{}-{}", d.lo as i64, d.hi as i64)
        } else {
            format!("{}-{}", d.lo, d.hi)
        };
        out.push_str(&format!(
            "{:<8} {:<52} {:<10} {}\n",
            d.name, d.description, range, d.unit
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table1_has_nine_rows_with_paper_ranges() {
        assert_eq!(PARAM_DEFS.len(), 9);
        assert_eq!(PARAM_DEFS[0].lo, 1.0);
        assert_eq!(PARAM_DEFS[0].hi, 13.0);
        assert_eq!(PARAM_DEFS[1].hi, 80.0); // WindSpd 0-80 mph
        assert_eq!(PARAM_DEFS[3].lo, 1.0); // M1 1-60 %
        assert_eq!(PARAM_DEFS[3].hi, 60.0);
        assert_eq!(PARAM_DEFS[6].lo, 30.0); // Mherb 30-300 %
        assert_eq!(PARAM_DEFS[6].hi, 300.0);
        assert_eq!(PARAM_DEFS[7].hi, 81.0); // Slope 0-81°
        assert_eq!(PARAM_DEFS[8].hi, 360.0);
    }

    #[test]
    fn decode_clamps_out_of_range_genes() {
        let sp = ScenarioSpace;
        let s = sp.decode(&[-1.0, 2.0, 0.5, 0.0, 1.0, 0.5, 0.5, 0.5, 0.5]);
        assert!(s.is_valid());
        assert_eq!(s.model, 1);
        assert_eq!(s.wind_speed_mph, 80.0);
    }

    #[test]
    fn nan_gene_decodes_to_lower_bound() {
        let sp = ScenarioSpace;
        let mut genes = [0.5; GENE_COUNT];
        genes[1] = f64::NAN;
        let s = sp.decode(&genes);
        assert_eq!(s.wind_speed_mph, 0.0);
        assert!(s.is_valid());
    }

    #[test]
    fn model_bins_cover_1_to_13() {
        let sp = ScenarioSpace;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..=1000 {
            let mut genes = [0.5; GENE_COUNT];
            genes[0] = i as f64 / 1000.0;
            seen.insert(sp.decode(&genes).model);
        }
        let models: Vec<u8> = seen.into_iter().collect();
        assert_eq!(models, (1..=13).collect::<Vec<u8>>());
    }

    #[test]
    fn encode_decode_roundtrip_preserves_scenario() {
        let sp = ScenarioSpace;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = sp.sample(&mut rng);
            let back = sp.decode(&sp.encode(&s));
            assert_eq!(back.model, s.model);
            assert!((back.wind_speed_mph - s.wind_speed_mph).abs() < 1e-9);
            assert!((back.mherb_pct - s.mherb_pct).abs() < 1e-9);
            assert!((back.aspect_deg - s.aspect_deg).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_scenarios_are_valid() {
        let sp = ScenarioSpace;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            assert!(sp.sample(&mut rng).is_valid());
        }
    }

    #[test]
    fn gene_distance_normalised() {
        let sp = ScenarioSpace;
        let zero = [0.0; GENE_COUNT];
        let one = [1.0; GENE_COUNT];
        assert_eq!(sp.gene_distance(&zero, &zero), 0.0);
        assert!((sp.gene_distance(&zero, &one) - 1.0).abs() < 1e-12);
        let half = [0.5; GENE_COUNT];
        assert!((sp.gene_distance(&zero, &half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spread_inputs_unit_conversion() {
        let s = Scenario {
            wind_speed_mph: 10.0,
            slope_deg: 45.0,
            ..Scenario::reference()
        };
        let i = s.spread_inputs();
        assert!((i.wind_fpm - 880.0).abs() < 1e-9);
        assert!((i.slope_steepness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table1_render_contains_all_params() {
        let t = render_table1();
        for d in &PARAM_DEFS {
            assert!(t.contains(d.name), "missing {}", d.name);
        }
        assert!(t.contains("miles/hour"));
        assert!(t.contains("1-13"));
    }

    #[test]
    fn reference_scenario_valid() {
        assert!(Scenario::reference().is_valid());
    }
}
