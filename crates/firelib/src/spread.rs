//! Rothermel spread-rate computation: no-wind/no-slope rate, wind & slope
//! factors, direction of maximum spread, elliptical eccentricity, and the
//! spread rate at an arbitrary azimuth (fireLib's `Fire_SpreadNoWindNoSlope`,
//! `Fire_SpreadWindSlopeMax` and `Fire_SpreadAtAzimuth`).

use crate::catalog::FuelLife;
use crate::combustion::FuelBed;
use crate::moisture::MoistureRegime;
use crate::SMIDGEN;

/// Environmental inputs for one spread evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadInputs {
    /// Midflame wind speed (ft/min).
    pub wind_fpm: f64,
    /// Direction the wind blows **towards**, degrees clockwise from north.
    pub wind_azimuth: f64,
    /// Terrain slope as rise/reach (tan of the slope angle), ≥ 0.
    pub slope_steepness: f64,
    /// Downslope-facing direction (aspect), degrees clockwise from north.
    pub aspect_azimuth: f64,
}

impl SpreadInputs {
    /// Calm, flat conditions.
    pub fn calm() -> Self {
        Self {
            wind_fpm: 0.0,
            wind_azimuth: 0.0,
            slope_steepness: 0.0,
            aspect_azimuth: 0.0,
        }
    }
}

/// The directional spread description of a fire front in one fuel cell:
/// Rothermel's maximum rate with Albini's elliptical shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadVector {
    /// No-wind, no-slope rate of spread (ft/min).
    pub ros0: f64,
    /// Maximum rate of spread (ft/min), down the wind/slope resultant.
    pub ros_max: f64,
    /// Azimuth of maximum spread, degrees clockwise from north.
    pub azimuth_max: f64,
    /// Eccentricity of the spread ellipse, `0 ≤ e < 1`.
    pub eccentricity: f64,
    /// Reaction intensity (Btu/ft²/min) — kept for the effective-wind cap
    /// and for reporting.
    pub reaction_intensity: f64,
    /// Effective wind speed (ft/min) implied by the combined factor.
    pub effective_wind_fpm: f64,
}

impl SpreadVector {
    /// A dead cell: nothing spreads.
    pub fn no_spread() -> Self {
        Self {
            ros0: 0.0,
            ros_max: 0.0,
            azimuth_max: 0.0,
            eccentricity: 0.0,
            reaction_intensity: 0.0,
            effective_wind_fpm: 0.0,
        }
    }

    /// Rate of spread (ft/min) in the direction `azimuth` (degrees clockwise
    /// from north): `ros_max × (1 − e) / (1 − e·cos(az − az_max))`
    /// (fireLib `Fire_SpreadAtAzimuth`).
    pub fn ros_at_azimuth(&self, azimuth: f64) -> f64 {
        if self.ros_max <= SMIDGEN {
            return 0.0;
        }
        let e = self.eccentricity;
        if e <= SMIDGEN {
            return self.ros_max;
        }
        let d = (azimuth - self.azimuth_max).to_radians();
        self.ros_max * (1.0 - e) / (1.0 - e * d.cos())
    }

    /// The spread rates at the eight compass azimuths (0°, 45°, …, 315°),
    /// the discretisation the cell propagation engine uses.
    pub fn compass_ros(&self) -> [f64; 8] {
        let mut out = [0.0; 8];
        for (i, v) in out.iter_mut().enumerate() {
            *v = self.ros_at_azimuth(45.0 * i as f64);
        }
        out
    }
}

/// No-wind, no-slope spread rate and reaction intensity
/// (fireLib `Fire_SpreadNoWindNoSlope`).
///
/// Returns `(ros0, reaction_intensity)` in (ft/min, Btu/ft²/min).
pub fn no_wind_no_slope(bed: &FuelBed, moisture: &MoistureRegime) -> (f64, f64) {
    if !bed.burnable {
        return (0.0, 0.0);
    }

    // Fine dead fuel moisture (load-and-ε weighted over dead particles).
    let mut wfmd = 0.0;
    for p in &bed.particles {
        if p.life.is_dead() {
            wfmd += p.load * p.epsilon * moisture.for_particle(p.life, p.savr);
        }
    }
    let fdmois = if bed.fine_dead > SMIDGEN {
        wfmd / bed.fine_dead
    } else {
        0.0
    };

    // Live extinction moisture (Albini 1976).
    let live_mext = if bed.live_mext_factor > SMIDGEN {
        let m = bed.live_mext_factor * (1.0 - fdmois / bed.mext_dead) - 0.226;
        m.max(bed.mext_dead)
    } else {
        0.0
    };

    // Per-life area-weighted moisture, moisture damping and heat sink.
    let mut life_moisture = [0.0f64; 3];
    let mut rb_qig = 0.0;
    for p in &bed.particles {
        let li = FuelBed::life_index(p.life);
        let m = moisture.for_particle(p.life, p.savr);
        life_moisture[li] += p.area_wtg * m;
        // Heat of preignition: Q_ig = 250 + 1116·M (Btu/lb).
        rb_qig += bed.life[li].area_wtg * p.area_wtg * p.epsilon * (250.0 + 1116.0 * m);
    }
    rb_qig *= bed.bulk_density;

    let mut rx_int = 0.0;
    for (li, (lf, &m)) in bed.life.iter().zip(&life_moisture).enumerate() {
        let mext = if li == 0 { bed.mext_dead } else { live_mext };
        if lf.rx_factor <= SMIDGEN {
            continue;
        }
        rx_int += lf.rx_factor * moisture_damping(m, mext);
    }

    let ros0 = if rb_qig > SMIDGEN {
        rx_int * bed.prop_flux / rb_qig
    } else {
        0.0
    };
    (ros0, rx_int)
}

/// Rothermel's moisture damping coefficient
/// `η_M = 1 − 2.59 r + 5.11 r² − 3.52 r³`, `r = min(1, M/M_x)`,
/// clamped to `[0, 1]`; zero at or beyond extinction.
pub fn moisture_damping(moisture: f64, mext: f64) -> f64 {
    if mext <= SMIDGEN {
        return 0.0;
    }
    let r = moisture / mext;
    if r >= 1.0 {
        return 0.0;
    }
    (1.0 - 2.59 * r + 5.11 * r * r - 3.52 * r * r * r).clamp(0.0, 1.0)
}

/// Combines wind and slope into the direction and magnitude of maximum
/// spread plus the ellipse eccentricity
/// (fireLib `Fire_SpreadWindSlopeMax` + eccentricity from the
/// length-to-width ratio).
pub fn wind_slope_max(
    bed: &FuelBed,
    moisture: &MoistureRegime,
    inputs: &SpreadInputs,
) -> SpreadVector {
    let (ros0, rx_int) = no_wind_no_slope(bed, moisture);
    wind_slope_from_ros0(bed, ros0, rx_int, inputs)
}

/// The wind/slope half of [`wind_slope_max`], taking a precomputed
/// `(ros0, rx_int)` pair from [`no_wind_no_slope`].
///
/// `no_wind_no_slope` iterates the bed's fuel particles and depends only
/// on the fuel code and the moisture regime — not on the cell — so a
/// per-cell sweep over a fuel mosaic can hoist it to one call per fuel
/// model and run just this function per cell (the `SimArena` SoA kernel).
/// [`wind_slope_max`] composes the two halves verbatim, so the split is
/// bit-identical by construction.
pub fn wind_slope_from_ros0(
    bed: &FuelBed,
    ros0: f64,
    rx_int: f64,
    inputs: &SpreadInputs,
) -> SpreadVector {
    if ros0 <= SMIDGEN {
        return SpreadVector::no_spread();
    }

    // Wind and slope factors.
    let phi_w = if inputs.wind_fpm <= SMIDGEN {
        0.0
    } else {
        bed.wind_k * inputs.wind_fpm.powf(bed.wind_b)
    };
    let phi_s = if inputs.slope_steepness <= SMIDGEN {
        0.0
    } else {
        bed.slope_k * inputs.slope_steepness * inputs.slope_steepness
    };

    let upslope = crate::terrain::upslope_azimuth(inputs.aspect_azimuth);

    // Situation analysis mirrors fireLib: combine the two virtual spread
    // vectors (slope along upslope, wind along wind_azimuth).
    let (mut ros_max, mut azimuth_max, mut phi_ew) = if phi_w <= SMIDGEN && phi_s <= SMIDGEN {
        (ros0, 0.0, 0.0)
    } else if phi_w <= SMIDGEN {
        (ros0 * (1.0 + phi_s), upslope, phi_s)
    } else if phi_s <= SMIDGEN {
        (ros0 * (1.0 + phi_w), inputs.wind_azimuth, phi_w)
    } else {
        // Both present: vector-add the slope and wind spread contributions.
        let slp_rate = ros0 * phi_s;
        let wnd_rate = ros0 * phi_w;
        let split = (inputs.wind_azimuth - upslope).to_radians();
        let x = slp_rate + wnd_rate * split.cos();
        let y = wnd_rate * split.sin();
        let rv = (x * x + y * y).sqrt();
        let ros_max = ros0 + rv;
        let phi_ew = ros_max / ros0 - 1.0;
        let mut az = upslope + y.atan2(x).to_degrees();
        az = landscape::geometry::normalize_azimuth(az);
        (ros_max, az, phi_ew)
    };

    // Effective wind speed implied by the combined factor, capped at
    // Rothermel's wind-speed limit 0.9·I_R.
    let mut eff_wind = if phi_ew > SMIDGEN && bed.wind_b > SMIDGEN {
        (phi_ew * bed.wind_e_inv).powf(1.0 / bed.wind_b)
    } else {
        0.0
    };
    let max_wind = 0.9 * rx_int;
    if eff_wind > max_wind {
        // Recompute the capped factor and maximum ROS.
        let phi_cap = if max_wind <= SMIDGEN {
            0.0
        } else {
            bed.wind_k * max_wind.powf(bed.wind_b)
        };
        eff_wind = max_wind;
        ros_max = ros0 * (1.0 + phi_cap);
        phi_ew = phi_cap;
        // Azimuth of maximum spread unchanged by the cap.
        let _ = phi_ew;
    }

    // Ellipse eccentricity from the length-to-width ratio
    // (Anderson 1983, as used by fireLib): L/W = 1 + 0.002840909·U_eff.
    let lw = 1.0 + 0.002840909 * eff_wind;
    let eccentricity = if lw > 1.0 + SMIDGEN {
        (lw * lw - 1.0).sqrt() / lw
    } else {
        0.0
    };

    azimuth_max = landscape::geometry::normalize_azimuth(azimuth_max);
    SpreadVector {
        ros0,
        ros_max,
        azimuth_max,
        eccentricity,
        reaction_intensity: rx_int,
        effective_wind_fpm: eff_wind,
    }
}

/// Convenience: `true` when the dead-fuel moisture regime extinguishes the
/// bed (η_M = 0 for the dead category, which carries all standard models).
pub fn is_extinguished(bed: &FuelBed, moisture: &MoistureRegime) -> bool {
    let (ros0, _) = no_wind_no_slope(bed, moisture);
    ros0 <= SMIDGEN
}

/// Area-weighted dead moisture of a bed (exposed for diagnostics and tests).
pub fn dead_moisture(bed: &FuelBed, moisture: &MoistureRegime) -> f64 {
    bed.particles
        .iter()
        .filter(|p| p.life.is_dead())
        .map(|p| p.area_wtg * moisture.for_particle(FuelLife::Dead, p.savr))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FuelCatalog;

    fn bed(n: u8) -> FuelBed {
        FuelBed::new(FuelCatalog::standard().model(n).unwrap())
    }

    #[test]
    fn grass_no_wind_ros_in_plausible_range() {
        // NFFL 1 at 5 % fine dead moisture: BEHAVE reports a no-wind ROS of
        // a few ft/min (≈ 2–5). Assert the plausible band rather than one
        // decimal place, since published figures vary with rounding.
        let (ros0, rx) = no_wind_no_slope(&bed(1), &MoistureRegime::moderate());
        assert!(ros0 > 1.0 && ros0 < 10.0, "ros0 = {ros0}");
        assert!(rx > 100.0 && rx < 5000.0, "rx = {rx}");
    }

    #[test]
    fn ros_decreases_with_moisture() {
        let b = bed(1);
        let dry = no_wind_no_slope(&b, &MoistureRegime::very_dry()).0;
        let mid = no_wind_no_slope(&b, &MoistureRegime::moderate()).0;
        assert!(dry > mid, "dry {dry} vs moderate {mid}");
    }

    #[test]
    fn beyond_extinction_no_spread() {
        // Model 1 extinction is 12 %: 18 % dead moisture kills it.
        let b = bed(1);
        assert!(is_extinguished(&b, &MoistureRegime::damp()));
        assert!(!is_extinguished(&b, &MoistureRegime::moderate()));
    }

    #[test]
    fn moisture_damping_shape() {
        assert_eq!(moisture_damping(0.3, 0.25), 0.0); // beyond extinction
        assert!((moisture_damping(0.0, 0.25) - 1.0).abs() < 1e-12);
        let lo = moisture_damping(0.05, 0.25);
        let hi = moisture_damping(0.20, 0.25);
        assert!(lo > hi && hi > 0.0);
    }

    #[test]
    fn wind_accelerates_spread() {
        let b = bed(1);
        let m = MoistureRegime::moderate();
        let calm = wind_slope_max(&b, &m, &SpreadInputs::calm());
        let windy = wind_slope_max(
            &b,
            &m,
            &SpreadInputs {
                wind_fpm: 5.0 * crate::MPH_TO_FPM,
                wind_azimuth: 90.0,
                ..SpreadInputs::calm()
            },
        );
        assert!(
            windy.ros_max > 3.0 * calm.ros_max,
            "calm {} windy {}",
            calm.ros_max,
            windy.ros_max
        );
        assert_eq!(windy.azimuth_max, 90.0);
        assert!(windy.eccentricity > 0.0 && windy.eccentricity < 1.0);
    }

    #[test]
    fn calm_flat_fire_is_circular() {
        let v = wind_slope_max(&bed(1), &MoistureRegime::moderate(), &SpreadInputs::calm());
        assert_eq!(v.eccentricity, 0.0);
        assert!((v.ros_max - v.ros0).abs() < 1e-12);
        for az in [0.0, 90.0, 222.0] {
            assert!((v.ros_at_azimuth(az) - v.ros_max).abs() < 1e-12);
        }
    }

    #[test]
    fn head_fire_fastest_backing_fire_slowest() {
        let v = wind_slope_max(
            &bed(1),
            &MoistureRegime::moderate(),
            &SpreadInputs {
                wind_fpm: 400.0,
                wind_azimuth: 45.0,
                ..SpreadInputs::calm()
            },
        );
        let head = v.ros_at_azimuth(45.0);
        let flank = v.ros_at_azimuth(135.0);
        let back = v.ros_at_azimuth(225.0);
        assert!(head > flank && flank > back && back > 0.0);
        assert!((head - v.ros_max).abs() < 1e-9);
    }

    #[test]
    fn slope_drives_fire_upslope() {
        // Aspect 180 (south-facing) → upslope is north (0°).
        let v = wind_slope_max(
            &bed(4),
            &MoistureRegime::moderate(),
            &SpreadInputs {
                slope_steepness: (30f64).to_radians().tan(),
                aspect_azimuth: 180.0,
                ..SpreadInputs::calm()
            },
        );
        assert_eq!(v.azimuth_max, 0.0);
        assert!(v.ros_max > v.ros0);
    }

    #[test]
    fn wind_and_slope_combine_between_directions() {
        // Upslope north (aspect 180), wind blowing east: the resultant
        // azimuth must lie strictly between 0 and 90 degrees.
        let v = wind_slope_max(
            &bed(4),
            &MoistureRegime::moderate(),
            &SpreadInputs {
                wind_fpm: 300.0,
                wind_azimuth: 90.0,
                slope_steepness: 0.4,
                aspect_azimuth: 180.0,
            },
        );
        assert!(
            v.azimuth_max > 0.0 && v.azimuth_max < 90.0,
            "az = {}",
            v.azimuth_max
        );
    }

    #[test]
    fn compass_ros_matches_azimuth_queries() {
        let v = wind_slope_max(
            &bed(1),
            &MoistureRegime::moderate(),
            &SpreadInputs {
                wind_fpm: 200.0,
                wind_azimuth: 10.0,
                ..SpreadInputs::calm()
            },
        );
        let table = v.compass_ros();
        for (i, &r) in table.iter().enumerate() {
            assert!((r - v.ros_at_azimuth(45.0 * i as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn unburnable_bed_never_spreads() {
        let v = wind_slope_max(
            &bed(0),
            &MoistureRegime::very_dry(),
            &SpreadInputs {
                wind_fpm: 1000.0,
                wind_azimuth: 0.0,
                ..SpreadInputs::calm()
            },
        );
        assert_eq!(v.ros_max, 0.0);
        assert_eq!(v.ros_at_azimuth(0.0), 0.0);
    }

    #[test]
    fn stronger_wind_more_eccentric() {
        let b = bed(1);
        let m = MoistureRegime::moderate();
        let mk = |mph: f64| {
            wind_slope_max(
                &b,
                &m,
                &SpreadInputs {
                    wind_fpm: mph * crate::MPH_TO_FPM,
                    wind_azimuth: 0.0,
                    ..SpreadInputs::calm()
                },
            )
            .eccentricity
        };
        assert!(mk(2.0) < mk(8.0));
        assert!(mk(8.0) < mk(20.0));
        assert!(mk(20.0) < 1.0);
    }
}
