//! The raster landscape a fire burns across.

use landscape::geometry::normalize_azimuth;
use landscape::Grid;

/// Terrain description for the propagation engine.
///
/// The ESS systems treat fuel model, slope and aspect as *scenario*
/// parameters (they are searched by the metaheuristic, Table I), i.e. they
/// are uniform over the map unless the terrain provides per-cell overrides.
/// `Terrain` therefore stores the raster shape plus optional override
/// layers; a cell's effective value is the override when present, otherwise
/// the scenario's global value.
#[derive(Debug, Clone)]
pub struct Terrain {
    rows: usize,
    cols: usize,
    /// Side length of a (square) cell, in feet.
    cell_size_ft: f64,
    fuel_override: Option<Grid<u8>>,
    /// Slope override in degrees.
    slope_override: Option<Grid<f64>>,
    /// Aspect override in degrees clockwise from north.
    aspect_override: Option<Grid<f64>>,
    /// Wind modulation, always set as a pair: a multiplier on the
    /// scenario's wind speed (terrain channelling/gusts) and an additive
    /// offset on its direction (degrees).
    wind_override: Option<(Grid<f64>, Grid<f64>)>,
    /// Bitmask of fuel codes present in the fuel layer (bit `c` set iff
    /// code `c` occurs); cached at layer attach so the simulator's
    /// spread-rate upper bound is O(catalog) per run, not O(cells).
    fuel_code_mask: u16,
    /// Maximum of the slope layer (degrees); 0 without a layer.
    slope_max_deg: f64,
    /// Maximum of the wind speed-factor layer; 1 without a layer.
    wind_factor_max: f64,
}

impl Terrain {
    /// A uniform terrain: every cell takes fuel/slope/aspect from the
    /// scenario under evaluation.
    ///
    /// # Panics
    /// Panics when a dimension is zero or the cell size is not positive.
    pub fn uniform(rows: usize, cols: usize, cell_size_ft: f64) -> Self {
        assert!(rows > 0 && cols > 0, "terrain dimensions must be non-zero");
        assert!(
            cell_size_ft.is_finite() && cell_size_ft > 0.0,
            "cell size must be positive"
        );
        Self {
            rows,
            cols,
            cell_size_ft,
            fuel_override: None,
            slope_override: None,
            aspect_override: None,
            wind_override: None,
            fuel_code_mask: 0,
            slope_max_deg: 0.0,
            wind_factor_max: 1.0,
        }
    }

    /// Adds a per-cell fuel-model override layer.
    ///
    /// # Panics
    /// Panics on shape mismatch or a fuel code outside 0–13.
    pub fn with_fuel(mut self, fuel: Grid<u8>) -> Self {
        assert_eq!(
            fuel.shape(),
            (self.rows, self.cols),
            "fuel layer shape mismatch"
        );
        assert!(
            fuel.as_slice().iter().all(|&f| f <= 13),
            "fuel codes must be 0..=13 (NFFL catalog)"
        );
        self.fuel_code_mask = fuel.as_slice().iter().fold(0u16, |m, &f| m | (1 << f));
        self.fuel_override = Some(fuel);
        self
    }

    /// Adds a per-cell slope override layer (degrees, `[0, 90)`).
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range values.
    pub fn with_slope(mut self, slope_deg: Grid<f64>) -> Self {
        assert_eq!(
            slope_deg.shape(),
            (self.rows, self.cols),
            "slope layer shape mismatch"
        );
        assert!(
            slope_deg
                .as_slice()
                .iter()
                .all(|&s| (0.0..90.0).contains(&s)),
            "slope must be in [0, 90) degrees"
        );
        self.slope_max_deg = slope_deg.as_slice().iter().fold(0.0f64, |m, &s| m.max(s));
        self.slope_override = Some(slope_deg);
        self
    }

    /// Adds a per-cell aspect override layer (degrees clockwise from north).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn with_aspect(mut self, aspect_deg: Grid<f64>) -> Self {
        assert_eq!(
            aspect_deg.shape(),
            (self.rows, self.cols),
            "aspect layer shape mismatch"
        );
        self.aspect_override = Some(aspect_deg.map(|&a| normalize_azimuth(a)));
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell side length (ft).
    pub fn cell_size_ft(&self) -> f64 {
        self.cell_size_ft
    }

    /// Adds a per-cell wind modulation layer: the scenario's wind speed is
    /// multiplied by `speed_factor` and its direction shifted by
    /// `dir_offset_deg` at each cell, modelling terrain channelling and
    /// gust fields. The searched *global* wind stays meaningful — terrain
    /// only modulates it — so calibration over Table I is unaffected.
    ///
    /// # Panics
    /// Panics on shape mismatch, a negative/non-finite speed factor or a
    /// non-finite direction offset.
    pub fn with_wind(mut self, speed_factor: Grid<f64>, dir_offset_deg: Grid<f64>) -> Self {
        assert_eq!(
            speed_factor.shape(),
            (self.rows, self.cols),
            "wind speed-factor layer shape mismatch"
        );
        assert_eq!(
            dir_offset_deg.shape(),
            (self.rows, self.cols),
            "wind direction-offset layer shape mismatch"
        );
        assert!(
            speed_factor
                .as_slice()
                .iter()
                .all(|&f| f.is_finite() && f >= 0.0),
            "wind speed factors must be finite and non-negative"
        );
        assert!(
            dir_offset_deg.as_slice().iter().all(|&d| d.is_finite()),
            "wind direction offsets must be finite"
        );
        self.wind_factor_max = speed_factor
            .as_slice()
            .iter()
            .fold(0.0f64, |m, &f| m.max(f));
        self.wind_override = Some((speed_factor, dir_offset_deg));
        self
    }

    /// `true` when any per-cell override layer is present (the simulator
    /// then computes spread per cell instead of once per scenario).
    pub fn has_overrides(&self) -> bool {
        self.fuel_override.is_some()
            || self.slope_override.is_some()
            || self.aspect_override.is_some()
            || self.wind_override.is_some()
    }

    /// `true` when the *only* per-cell layer is the fuel mosaic. Spread then
    /// depends on the cell solely through its fuel code, so the simulator
    /// caches one directional table per fuel model instead of one per cell.
    pub fn fuel_is_only_override(&self) -> bool {
        self.fuel_override.is_some()
            && self.slope_override.is_none()
            && self.aspect_override.is_none()
            && self.wind_override.is_none()
    }

    /// The fuel override layer, when present.
    pub fn fuel_layer(&self) -> Option<&Grid<u8>> {
        self.fuel_override.as_ref()
    }

    /// The slope override layer (degrees), when present. Exposed so the
    /// simulator's SoA gather can walk the raster linearly instead of
    /// branching per cell in [`Terrain::slope_at`].
    pub fn slope_layer(&self) -> Option<&Grid<f64>> {
        self.slope_override.as_ref()
    }

    /// The aspect override layer (degrees, pre-normalized), when present.
    pub fn aspect_layer(&self) -> Option<&Grid<f64>> {
        self.aspect_override.as_ref()
    }

    /// The wind modulation layers `(speed_factor, dir_offset_deg)`, when
    /// present.
    pub fn wind_layer(&self) -> Option<(&Grid<f64>, &Grid<f64>)> {
        self.wind_override.as_ref().map(|(f, o)| (f, o))
    }

    /// Bitmask of fuel codes the fire can encounter anywhere on the map:
    /// the layer's cached code mask when a fuel layer is present, otherwise
    /// the scenario's single global model (empty for an out-of-catalog
    /// model, which a layer-less simulation rejects anyway). Bit `c` ↔ NFFL
    /// code `c`.
    pub fn fuel_code_mask(&self, scenario_fuel: u8) -> u16 {
        match &self.fuel_override {
            Some(_) => self.fuel_code_mask,
            None if scenario_fuel <= 13 => 1 << scenario_fuel,
            None => 0,
        }
    }

    /// Upper bound on the effective slope (degrees) over the whole map:
    /// the slope layer's cached maximum when present, otherwise the
    /// scenario's global slope.
    pub fn max_slope_deg(&self, scenario_slope_deg: f64) -> f64 {
        match &self.slope_override {
            Some(_) => self.slope_max_deg,
            None => scenario_slope_deg,
        }
    }

    /// Upper bound on the effective wind speed over the whole map: the
    /// scenario's speed times the wind layer's cached maximum factor
    /// (1 without a layer).
    pub fn max_wind_speed(&self, scenario_speed: f64) -> f64 {
        match &self.wind_override {
            Some(_) => scenario_speed * self.wind_factor_max,
            None => scenario_speed,
        }
    }

    /// Effective fuel model of a cell given the scenario's global value.
    #[inline]
    pub fn fuel_at(&self, row: usize, col: usize, scenario_fuel: u8) -> u8 {
        self.fuel_override
            .as_ref()
            .map_or(scenario_fuel, |g| g.at(row, col))
    }

    /// Effective slope (degrees) of a cell given the scenario's value.
    #[inline]
    pub fn slope_at(&self, row: usize, col: usize, scenario_slope_deg: f64) -> f64 {
        self.slope_override
            .as_ref()
            .map_or(scenario_slope_deg, |g| g.at(row, col))
    }

    /// Effective aspect (degrees) of a cell given the scenario's value.
    #[inline]
    pub fn aspect_at(&self, row: usize, col: usize, scenario_aspect_deg: f64) -> f64 {
        self.aspect_override
            .as_ref()
            .map_or(scenario_aspect_deg, |g| g.at(row, col))
    }

    /// Effective `(wind speed, wind direction)` of a cell given the
    /// scenario's global wind. Without a wind layer the scenario values pass
    /// through untouched.
    #[inline]
    pub fn wind_at(
        &self,
        row: usize,
        col: usize,
        scenario_speed: f64,
        scenario_dir_deg: f64,
    ) -> (f64, f64) {
        match &self.wind_override {
            Some((factor, offset)) => (
                scenario_speed * factor.at(row, col),
                normalize_azimuth(scenario_dir_deg + offset.at(row, col)),
            ),
            None => (scenario_speed, scenario_dir_deg),
        }
    }
}

/// The direction fire is pushed by slope: directly upslope, i.e. opposite
/// the (downslope-facing) aspect.
pub fn upslope_azimuth(aspect_deg: f64) -> f64 {
    normalize_azimuth(aspect_deg + 180.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_terrain_delegates_to_scenario() {
        let t = Terrain::uniform(4, 4, 100.0);
        assert!(!t.has_overrides());
        assert_eq!(t.fuel_at(1, 1, 7), 7);
        assert_eq!(t.slope_at(1, 1, 12.0), 12.0);
        assert_eq!(t.aspect_at(1, 1, 270.0), 270.0);
    }

    #[test]
    fn overrides_shadow_scenario_values() {
        let fuel = Grid::filled(2, 2, 4u8);
        let t = Terrain::uniform(2, 2, 50.0).with_fuel(fuel);
        assert!(t.has_overrides());
        assert_eq!(t.fuel_at(0, 0, 1), 4);
    }

    #[test]
    fn aspect_layer_is_normalized() {
        let t = Terrain::uniform(1, 1, 50.0).with_aspect(Grid::filled(1, 1, -90.0));
        assert_eq!(t.aspect_at(0, 0, 0.0), 270.0);
    }

    #[test]
    fn upslope_is_opposite_aspect() {
        assert_eq!(upslope_azimuth(180.0), 0.0);
        assert_eq!(upslope_azimuth(0.0), 180.0);
        assert_eq!(upslope_azimuth(270.0), 90.0);
    }

    #[test]
    fn wind_layer_modulates_scenario_wind() {
        let factor = Grid::from_vec(1, 2, vec![0.5, 2.0]);
        let offset = Grid::from_vec(1, 2, vec![0.0, 350.0]);
        let t = Terrain::uniform(1, 2, 50.0).with_wind(factor, offset);
        assert!(t.has_overrides());
        assert!(!t.fuel_is_only_override());
        assert_eq!(t.wind_at(0, 0, 10.0, 90.0), (5.0, 90.0));
        let (spd, dir) = t.wind_at(0, 1, 10.0, 90.0);
        assert_eq!(spd, 20.0);
        assert_eq!(dir, 80.0); // 90 + 350 wraps to 80
    }

    #[test]
    fn fuel_only_classification() {
        let t = Terrain::uniform(2, 2, 50.0).with_fuel(Grid::filled(2, 2, 3u8));
        assert!(t.fuel_is_only_override());
        let t2 = Terrain::uniform(2, 2, 50.0)
            .with_fuel(Grid::filled(2, 2, 3u8))
            .with_slope(Grid::filled(2, 2, 10.0));
        assert!(!t2.fuel_is_only_override());
        assert!(!Terrain::uniform(2, 2, 50.0).fuel_is_only_override());
    }

    #[test]
    fn cached_maxima_track_layers() {
        let t = Terrain::uniform(2, 2, 50.0);
        assert_eq!(t.fuel_code_mask(3), 1 << 3);
        assert_eq!(t.fuel_code_mask(99), 0);
        assert_eq!(t.max_slope_deg(17.0), 17.0);
        assert_eq!(t.max_wind_speed(8.0), 8.0);

        let t = Terrain::uniform(2, 2, 50.0)
            .with_fuel(Grid::from_vec(2, 2, vec![1u8, 4, 0, 1]))
            .with_slope(Grid::from_vec(2, 2, vec![5.0, 40.0, 0.0, 12.0]))
            .with_wind(
                Grid::from_vec(2, 2, vec![0.5, 2.5, 1.0, 0.0]),
                Grid::filled(2, 2, 0.0),
            );
        assert_eq!(t.fuel_code_mask(9), (1 << 0) | (1 << 1) | (1 << 4));
        assert_eq!(t.max_slope_deg(80.0), 40.0);
        assert_eq!(t.max_wind_speed(10.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_wind_factor_rejected() {
        let _ = Terrain::uniform(1, 1, 50.0)
            .with_wind(Grid::filled(1, 1, -1.0), Grid::filled(1, 1, 0.0));
    }

    #[test]
    #[should_panic(expected = "offsets must be finite")]
    fn non_finite_wind_offset_rejected() {
        let _ = Terrain::uniform(1, 1, 50.0)
            .with_wind(Grid::filled(1, 1, 1.0), Grid::filled(1, 1, f64::NAN));
    }

    #[test]
    #[should_panic(expected = "0..=13")]
    fn invalid_fuel_code_rejected() {
        let _ = Terrain::uniform(1, 1, 50.0).with_fuel(Grid::filled(1, 1, 14u8));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn layer_shape_mismatch_rejected() {
        let _ = Terrain::uniform(2, 2, 50.0).with_slope(Grid::filled(1, 2, 5.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_cell_size_rejected() {
        let _ = Terrain::uniform(2, 2, 0.0);
    }
}
