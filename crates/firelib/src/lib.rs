//! `firelib` — a from-scratch Rust reimplementation of the fire behaviour
//! library used by the ESS family of wildfire prediction systems.
//!
//! The paper (§III-A) uses **fireLib**, Collin Bevins' C library implementing
//! the Rothermel (1972) surface fire spread model with Albini's (1976)
//! refinements, the 13 NFFL fuel models, and cell-to-cell minimum-travel-time
//! propagation over a raster of square cells. This crate reproduces that
//! stack:
//!
//! * [`catalog`] — fuel particles and the standard 13-model NFFL catalog
//!   (Table I, first row: "Rothermel Fuel Model, 1–13");
//! * [`combustion`] — the moisture-independent fuel-bed intermediates that
//!   fireLib precomputes once per fuel model (σ, β, Γ, ξ, wind/slope factor
//!   coefficients);
//! * [`moisture`] — the dead/live moisture regime (`M1`, `M10`, `M100`,
//!   `Mherb` of Table I);
//! * [`spread`] — no-wind/no-slope rate of spread, wind & slope factors,
//!   direction of maximum spread and elliptical eccentricity, and the
//!   spread rate at an arbitrary azimuth;
//! * [`scenario`] — the 9-parameter input vector of Table I with ranges,
//!   units, validation, uniform sampling, and a normalised gene encoding
//!   used by every metaheuristic in the workspace;
//! * [`terrain`] — the raster landscape (cell size, optional per-cell fuel /
//!   slope / aspect overrides);
//! * [`sim`] — [`sim::FireSim`], the propagation engine: given a terrain, a
//!   scenario and an initial fire line it produces the per-cell ignition-time
//!   map ("another map indicating the time instant of ignition of each
//!   cell", §III-A).
//!
//! Units follow fireLib: feet, minutes, pounds, Btu. The public API converts
//! from the paper's units (miles/hour for wind, degrees for slope) at the
//! [`scenario::Scenario`] boundary.

pub mod behave;
pub mod catalog;
pub mod combustion;
pub mod moisture;
pub mod scenario;
pub mod sim;
pub mod spread;
pub mod terrain;
pub mod workload;

pub use behave::{fire_behaviour, FireBehaviour};
pub use catalog::{FuelCatalog, FuelLife, FuelModel, FuelParticle};
pub use combustion::FuelBed;
pub use moisture::MoistureRegime;
pub use scenario::{ParamDef, Scenario, ScenarioSpace, GENE_COUNT};
pub use sim::{FireSim, Kernel, ParseKernelError, SimArena, DEFAULT_TILE};
pub use spread::{SpreadInputs, SpreadVector};
pub use terrain::Terrain;
pub use workload::{Workload, WorkloadSpec};

/// Feet per minute in one mile per hour (fireLib's wind-speed conversion).
pub const MPH_TO_FPM: f64 = 88.0;

/// Value below which fireLib treats a quantity as zero.
pub const SMIDGEN: f64 = 1e-6;
