//! Moisture-independent fuel-bed intermediates (fireLib's
//! `Fire_FuelCombustion`).
//!
//! Everything here depends only on the fuel model, so fireLib computes it
//! once per catalog entry; we do the same and cache [`FuelBed`] values
//! inside the simulator. Formula numbers cite Rothermel (1972) as tabulated
//! in the fireLib source.

use crate::catalog::{FuelLife, FuelModel};
use crate::SMIDGEN;

/// Per-particle derived quantities kept for the moisture-dependent phase.
#[derive(Debug, Clone, Copy)]
pub struct ParticleFactors {
    /// Life category.
    pub life: FuelLife,
    /// Area weighting factor within its life category (fᵢ).
    pub area_wtg: f64,
    /// Oven-dry load (lb/ft²).
    pub load: f64,
    /// SAV ratio (1/ft).
    pub savr: f64,
    /// Net load (silica-free): `load × (1 − s_total)`.
    pub net_load: f64,
    /// `exp(-138/savr)` — effective heating number εᵢ.
    pub epsilon: f64,
}

/// Life-category aggregates.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifeFactors {
    /// Category surface-area weighting factor (F_life).
    pub area_wtg: f64,
    /// Reaction-intensity factor: Γ × w_net × heat × η_s (lacking η_M).
    pub rx_factor: f64,
    /// Extinction moisture of the category (dead: from the model; live:
    /// computed per-moisture-regime, so 0 here).
    pub mext: f64,
}

/// The precomputed fuel bed: everything Rothermel needs that does not depend
/// on moisture, wind or slope.
#[derive(Debug, Clone)]
pub struct FuelBed {
    /// Source model number.
    pub model_number: u8,
    /// `true` when the bed can carry fire.
    pub burnable: bool,
    /// Characteristic surface-area-to-volume ratio σ (1/ft).
    pub sigma: f64,
    /// Packing ratio β.
    pub beta: f64,
    /// β / β_opt.
    pub beta_ratio: f64,
    /// Bulk density ρ_b (lb/ft³).
    pub bulk_density: f64,
    /// Propagating flux ratio ξ.
    pub prop_flux: f64,
    /// Slope factor coefficient: φ_s = slope_k × tan²φ.
    pub slope_k: f64,
    /// Wind factor coefficients: φ_w = wind_k × U^wind_b (U in ft/min).
    pub wind_b: f64,
    /// Wind factor multiplier (C × ratio^−E).
    pub wind_k: f64,
    /// Inverse helper: U = (φ_w × wind_e_inv)^(1/wind_b).
    pub wind_e_inv: f64,
    /// Live-extinction-moisture factor `2.9 × W_dead/W_live` (0 when no
    /// live fuel).
    pub live_mext_factor: f64,
    /// Fine dead fuel normaliser Σ load·exp(−138/savr) over dead particles.
    pub fine_dead: f64,
    /// Dead extinction moisture (fraction).
    pub mext_dead: f64,
    /// Per-particle factors.
    pub particles: Vec<ParticleFactors>,
    /// Per-life-category aggregates, indexed by [`FuelBed::life_index`].
    pub life: [LifeFactors; 3],
}

impl FuelBed {
    /// Index of a life category inside [`FuelBed::life`].
    pub fn life_index(life: FuelLife) -> usize {
        match life {
            FuelLife::Dead => 0,
            FuelLife::LiveHerb => 1,
            FuelLife::LiveWood => 2,
        }
    }

    /// Precomputes the fuel-bed intermediates for `model`
    /// (fireLib `Fire_FuelCombustion`).
    pub fn new(model: &FuelModel) -> Self {
        let mut bed = FuelBed {
            model_number: model.number,
            burnable: false,
            sigma: 0.0,
            beta: 0.0,
            beta_ratio: 0.0,
            bulk_density: 0.0,
            prop_flux: 0.0,
            slope_k: 0.0,
            wind_b: 1.0,
            wind_k: 0.0,
            wind_e_inv: 0.0,
            live_mext_factor: 0.0,
            fine_dead: 0.0,
            mext_dead: model.mext_dead,
            particles: Vec::with_capacity(model.particles.len()),
            life: [LifeFactors::default(); 3],
        };
        let total_load = model.total_load();
        if model.depth <= SMIDGEN || total_load <= SMIDGEN {
            return bed; // unburnable: all-zero factors
        }

        // --- Surface areas and weighting factors -------------------------
        let mut life_area = [0.0f64; 3];
        let mut total_area = 0.0;
        for p in &model.particles {
            let a = p.surface_area();
            life_area[Self::life_index(p.life)] += a;
            total_area += a;
        }
        if total_area <= SMIDGEN {
            return bed;
        }
        for p in &model.particles {
            let la = life_area[Self::life_index(p.life)];
            let area_wtg = if la > SMIDGEN {
                p.surface_area() / la
            } else {
                0.0
            };
            bed.particles.push(ParticleFactors {
                life: p.life,
                area_wtg,
                load: p.load,
                savr: p.savr,
                net_load: p.load * (1.0 - p.si_total),
                epsilon: p.sigma_factor_dead(),
            });
        }
        for (lf, area) in bed.life.iter_mut().zip(life_area) {
            lf.area_wtg = area / total_area;
        }

        // --- Characteristic σ, packing ratio -----------------------------
        let mut sigma = 0.0;
        for (p, f) in model.particles.iter().zip(&bed.particles) {
            sigma += bed.life[Self::life_index(p.life)].area_wtg * f.area_wtg * p.savr;
        }
        let bulk_density = total_load / model.depth;
        // All standard particles share density 32 lb/ft³; mirror fireLib's
        // use of the particle density for β.
        let particle_density = model.particles[0].density;
        let beta = bulk_density / particle_density;
        let beta_opt = 3.348 * sigma.powf(-0.8189);
        let ratio = beta / beta_opt;

        // --- Reaction velocity Γ -----------------------------------------
        let aa = 133.0 * sigma.powf(-0.7913);
        let sigma15 = sigma.powf(1.5);
        let gamma_max = sigma15 / (495.0 + 0.0594 * sigma15);
        let gamma = gamma_max * ratio.powf(aa) * (aa * (1.0 - ratio)).exp();

        // --- Mineral damping η_s (effective silica 0.010 standard) -------
        // fireLib computes it per life category from the particles' s_eff;
        // all standard particles share 0.010, giving η_s ≈ 0.4174.
        let mut life_eta_s = [0.0f64; 3];
        for (p, f) in model.particles.iter().zip(&bed.particles) {
            life_eta_s[Self::life_index(p.life)] += f.area_wtg * p.si_effective;
        }
        let eta_s = |seff: f64| -> f64 {
            if seff <= SMIDGEN {
                1.0
            } else {
                (0.174 * seff.powf(-0.19)).min(1.0)
            }
        };

        // --- Life reaction factors (Γ·w_net·h·η_s) ------------------------
        let mut life_load = [0.0f64; 3];
        let mut life_heat = [0.0f64; 3];
        for (p, f) in model.particles.iter().zip(&bed.particles) {
            let li = Self::life_index(p.life);
            life_load[li] += f.area_wtg * f.net_load;
            life_heat[li] += f.area_wtg * p.heat;
        }
        for li in 0..3 {
            bed.life[li].rx_factor = life_load[li] * life_heat[li] * eta_s(life_eta_s[li]) * gamma;
        }
        bed.life[0].mext = model.mext_dead;

        // --- Live extinction moisture factor ------------------------------
        let mut fine_dead = 0.0;
        let mut fine_live = 0.0;
        for p in &model.particles {
            if p.life.is_dead() {
                fine_dead += p.load * p.sigma_factor_dead();
            } else {
                fine_live += p.load * p.sigma_factor_live();
            }
        }
        bed.fine_dead = fine_dead;
        bed.live_mext_factor = if fine_live > SMIDGEN {
            2.9 * fine_dead / fine_live
        } else {
            0.0
        };

        // --- Propagating flux ξ -------------------------------------------
        let prop_flux =
            ((0.792 + 0.681 * sigma.sqrt()) * (beta + 0.1)).exp() / (192.0 + 0.2595 * sigma);

        // --- Wind and slope coefficients ----------------------------------
        let slope_k = 5.275 * beta.powf(-0.3);
        let wind_b = 0.02526 * sigma.powf(0.54);
        let c = 7.47 * (-0.133 * sigma.powf(0.55)).exp();
        let e = 0.715 * (-0.000359 * sigma).exp();
        let wind_k = c * ratio.powf(-e);
        let wind_e_inv = ratio.powf(e) / c;

        bed.burnable = true;
        bed.sigma = sigma;
        bed.beta = beta;
        bed.beta_ratio = ratio;
        bed.bulk_density = bulk_density;
        bed.prop_flux = prop_flux;
        bed.slope_k = slope_k;
        bed.wind_b = wind_b;
        bed.wind_k = wind_k;
        bed.wind_e_inv = wind_e_inv;
        bed
    }
}

/// The precomputed fuel beds of the standard 14-entry NFFL catalog, built
/// once per process and shared read-only by every simulator.
///
/// `FuelBed::new` walks every particle of every model; rebuilding the table
/// in each `FireSim::new` made simulator construction (and therefore
/// workload setup and worker spin-up) needlessly quadratic in practice. The
/// table is immutable, so one `Arc<[FuelBed]>` serves all threads. Indexing
/// follows the catalog: `beds[code]` is fuel model `code` (0 = NoFuel).
pub fn standard_beds() -> std::sync::Arc<[FuelBed]> {
    use std::sync::{Arc, OnceLock};
    static BEDS: OnceLock<Arc<[FuelBed]>> = OnceLock::new();
    BEDS.get_or_init(|| {
        crate::catalog::FuelCatalog::standard()
            .models()
            .iter()
            .map(FuelBed::new)
            .collect()
    })
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FuelCatalog;

    fn bed(n: u8) -> FuelBed {
        let cat = FuelCatalog::standard();
        FuelBed::new(cat.model(n).unwrap())
    }

    #[test]
    fn standard_beds_is_shared_and_catalog_ordered() {
        let a = standard_beds();
        let b = standard_beds();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "bed table must be shared");
        assert_eq!(a.len(), 14);
        for (code, bed) in a.iter().enumerate() {
            assert_eq!(bed.model_number as usize, code);
        }
        assert!(!a[0].burnable);
        assert!(a[1].burnable);
    }

    #[test]
    fn grass_sigma_equals_its_only_particle() {
        // Model 1 has a single particle, so σ must be its SAV ratio.
        let b = bed(1);
        assert!((b.sigma - 3500.0).abs() < 1e-9);
        assert!(b.burnable);
    }

    #[test]
    fn bulk_density_is_load_over_depth() {
        let b = bed(1);
        assert!((b.bulk_density - 0.034 / 1.0).abs() < 1e-12);
        let b13 = bed(13);
        assert!((b13.bulk_density - (0.3220 + 1.0580 + 1.2880) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn packing_ratio_uses_particle_density() {
        let b = bed(1);
        assert!((b.beta - 0.034 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn no_fuel_model_yields_inert_bed() {
        let b = bed(0);
        assert!(!b.burnable);
        assert_eq!(b.sigma, 0.0);
        assert_eq!(b.wind_k, 0.0);
    }

    #[test]
    fn live_mext_factor_only_for_live_models() {
        assert_eq!(bed(1).live_mext_factor, 0.0);
        assert_eq!(bed(3).live_mext_factor, 0.0);
        assert!(bed(4).live_mext_factor > 0.0);
        assert!(bed(10).live_mext_factor > 0.0);
    }

    #[test]
    fn area_weights_sum_to_one() {
        for n in 1..=13u8 {
            let b = bed(n);
            let total: f64 = b.life.iter().map(|l| l.area_wtg).sum();
            assert!((total - 1.0).abs() < 1e-9, "model {n}: ΣF = {total}");
            for li in 0..3 {
                let s: f64 = b
                    .particles
                    .iter()
                    .filter(|p| FuelBed::life_index(p.life) == li)
                    .map(|p| p.area_wtg)
                    .sum();
                if b.life[li].area_wtg > 0.0 {
                    assert!((s - 1.0).abs() < 1e-9, "model {n} life {li}: Σf = {s}");
                }
            }
        }
    }

    #[test]
    fn finer_fuel_has_larger_wind_exponent() {
        // wind_b grows with σ: grass (3500) > heavy slash (σ small).
        assert!(bed(1).wind_b > bed(13).wind_b);
    }

    #[test]
    fn prop_flux_in_unit_interval() {
        for n in 1..=13u8 {
            let b = bed(n);
            assert!(
                b.prop_flux > 0.0 && b.prop_flux < 1.0,
                "model {n}: ξ = {}",
                b.prop_flux
            );
        }
    }

    #[test]
    fn wind_e_inv_is_inverse_of_wind_k_times_ratio_term() {
        for n in 1..=13u8 {
            let b = bed(n);
            // wind_k × wind_e_inv = ratio^e × ratio^−e... they satisfy
            // wind_k × wind_e_inv = 1 exactly when ratio^±e cancel:
            // wind_k = C·ratio^−E, wind_e_inv = ratio^E / C → product = 1.
            assert!((b.wind_k * b.wind_e_inv - 1.0).abs() < 1e-9, "model {n}");
        }
    }

    #[test]
    fn all_standard_models_burnable() {
        for n in 1..=13u8 {
            assert!(bed(n).burnable, "model {n} should be burnable");
        }
    }
}
