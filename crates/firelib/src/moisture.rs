//! Fuel moisture regimes (the `M1`, `M10`, `M100`, `Mherb` rows of Table I).

use crate::catalog::FuelLife;

/// Moisture content per fuel class, as fractions of oven-dry weight.
///
/// The paper's Table I specifies dead fuel moistures `M1`, `M10`, `M100`
/// (1–60 %) and live herbaceous moisture `Mherb` (30–300 %). fireLib also
/// accepts a live woody moisture; Table I omits it, so the scenario layer
/// maps `Mherb` onto both live classes (documented substitution — the live
/// classes then behave identically, which is exact for the 8 models without
/// woody fuel and a faithful approximation for models 4, 5, 7 and 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoistureRegime {
    /// 1-hour dead fuel moisture (fraction).
    pub m1: f64,
    /// 10-hour dead fuel moisture (fraction).
    pub m10: f64,
    /// 100-hour dead fuel moisture (fraction).
    pub m100: f64,
    /// Live herbaceous moisture (fraction).
    pub herb: f64,
    /// Live woody moisture (fraction).
    pub wood: f64,
}

impl MoistureRegime {
    /// Builds a regime from percentages (the units of Table I).
    ///
    /// # Panics
    /// Panics on negative or non-finite input — moisture is a physical
    /// fraction and any negative value indicates a decoding bug upstream.
    pub fn from_percent(m1: f64, m10: f64, m100: f64, herb: f64, wood: f64) -> Self {
        for v in [m1, m10, m100, herb, wood] {
            assert!(
                v.is_finite() && v >= 0.0,
                "moisture must be a non-negative percentage"
            );
        }
        Self {
            m1: m1 / 100.0,
            m10: m10 / 100.0,
            m100: m100 / 100.0,
            herb: herb / 100.0,
            wood: wood / 100.0,
        }
    }

    /// The moisture applied to a particle of the given life class and SAV
    /// ratio, following fireLib's timelag assignment: dead particles map to
    /// the 1-/10-/100-hour classes by their SAV ratio.
    pub fn for_particle(&self, life: FuelLife, savr: f64) -> f64 {
        match life {
            FuelLife::LiveHerb => self.herb,
            FuelLife::LiveWood => self.wood,
            FuelLife::Dead => {
                // fireLib boundaries: savr > 192 → 1hr; > 48 → 10hr; else 100hr.
                if savr > 192.0 {
                    self.m1
                } else if savr > 48.0 {
                    self.m10
                } else {
                    self.m100
                }
            }
        }
    }

    /// A very dry reference regime (drought conditions).
    pub fn very_dry() -> Self {
        Self::from_percent(3.0, 4.0, 5.0, 70.0, 70.0)
    }

    /// A moderate reference regime (the fireLib demo uses 1hr ≈ 5 %).
    pub fn moderate() -> Self {
        Self::from_percent(5.0, 7.0, 9.0, 100.0, 100.0)
    }

    /// A damp regime close to extinction for most models.
    pub fn damp() -> Self {
        Self::from_percent(18.0, 20.0, 22.0, 180.0, 180.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_conversion() {
        let m = MoistureRegime::from_percent(5.0, 7.0, 9.0, 100.0, 120.0);
        assert!((m.m1 - 0.05).abs() < 1e-12);
        assert!((m.m100 - 0.09).abs() < 1e-12);
        assert!((m.wood - 1.2).abs() < 1e-12);
    }

    #[test]
    fn timelag_class_assignment_by_savr() {
        let m = MoistureRegime::from_percent(1.0, 2.0, 3.0, 50.0, 60.0);
        assert_eq!(m.for_particle(FuelLife::Dead, 3500.0), m.m1);
        assert_eq!(m.for_particle(FuelLife::Dead, 109.0), m.m10);
        assert_eq!(m.for_particle(FuelLife::Dead, 30.0), m.m100);
        assert_eq!(m.for_particle(FuelLife::LiveHerb, 1500.0), m.herb);
        assert_eq!(m.for_particle(FuelLife::LiveWood, 1500.0), m.wood);
    }

    #[test]
    fn boundary_savr_values() {
        let m = MoistureRegime::from_percent(1.0, 2.0, 3.0, 50.0, 60.0);
        // Exactly 192 falls in the 10-hour class, exactly 48 in the 100-hour.
        assert_eq!(m.for_particle(FuelLife::Dead, 192.0), m.m10);
        assert_eq!(m.for_particle(FuelLife::Dead, 48.0), m.m100);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_moisture_rejected() {
        let _ = MoistureRegime::from_percent(-1.0, 2.0, 3.0, 50.0, 60.0);
    }

    #[test]
    fn reference_regimes_ordered_by_dryness() {
        let d = MoistureRegime::very_dry();
        let m = MoistureRegime::moderate();
        let w = MoistureRegime::damp();
        assert!(d.m1 < m.m1 && m.m1 < w.m1);
    }
}
