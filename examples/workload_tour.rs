//! A tour of the workload corpus: list every named workload, inspect one
//! heterogeneous landscape, and run the full calibration → prediction
//! pipeline on a corpus workload by *name* — the one-config-value path a
//! production deployment uses to point the system at a new landscape.
//!
//! ```sh
//! cargo run --release --example workload_tour
//! ```

use ess::report::{f2, f4, TextTable};
use ess_ns::{EssNs, EssNsConfig};
use firelib::workload;
use landscape::io::render_fire_line;

fn main() {
    // --- 1. The corpus ------------------------------------------------------
    // Every workload is a declarative, seeded spec: same name, same
    // landscape, same synthetic "real fire" — on every machine and PR.
    let mut table = TextTable::new(["workload", "grid", "ignitions", "steps", "burnable"]);
    for spec in workload::corpus() {
        let w = spec.build();
        table.row([
            spec.name.to_string(),
            format!("{}x{}", spec.rows, spec.cols),
            spec.ignitions.to_string(),
            spec.steps.to_string(),
            f2(w.burnable_fraction()),
        ]);
    }
    println!("the workload corpus:\n\n{}", table.render());

    // --- 2. One heterogeneous landscape ------------------------------------
    // `firebreak_maze` threads unburnable rock/water through a fuel mosaic;
    // the reference fire must route around the breaks.
    let w = workload::firebreak_maze().build();
    let sim = w.sim();
    let reference = w.reference_lines(&sim);
    println!(
        "{}: {} → {} cells burned over {} intervals",
        w.name,
        w.ignition.burned_area(),
        reference.last().expect("non-empty").burned_area(),
        w.truth.len()
    );
    println!(
        "{}",
        render_fire_line(reference.last().expect("non-empty"), Some(&w.ignition))
    );

    // --- 3. Calibrate + predict on a named workload -------------------------
    // `EssNsConfig::workload` names a corpus workload (or a hand-built
    // library case); `EssNs::run` resolves it and runs the Fig. 3 pipeline
    // end to end on the configured backend. A misspelled name comes back
    // as `Err(ServiceError::UnknownCase)`, not a silent skip.
    let system = EssNs::new(EssNsConfig {
        workload: Some("twin_fronts".to_string()),
        ..EssNsConfig::default()
    });
    let report = system.run(7).expect("corpus workload resolves");
    println!(
        "pipeline on '{}': mean prediction quality {} over {} steps ({} evaluations)",
        report.case,
        f4(report.mean_quality()),
        report.steps.len(),
        report.total_evaluations()
    );
}
