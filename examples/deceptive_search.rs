//! The §II-C deceptiveness argument, outside the fire domain: on a fully
//! deceptive landscape the objective gradient points *away* from the global
//! optimum, so a fitness GA converges to the deceptive attractor while
//! Novelty Search — which ignores the objective — keeps finding new
//! behaviours until it stumbles on the true optimum and records it in
//! `bestSet`.
//!
//! ```sh
//! cargo run --release --example deceptive_search
//! ```

use ess_ns::{NoveltyGa, NoveltyGaConfig};
use evoalg::benchmarks::{deceptive_trap, trap_is_optimal};
use evoalg::{GaConfig, GaEngine};

const DIMS: usize = 16; // four 4-bit trap blocks
const GENS: u32 = 60;
const SEEDS: u64 = 10;

fn main() {
    println!(
        "deceptive trap: {DIMS} pseudo-bits in blocks of 4, {GENS} generations, {SEEDS} seeds"
    );
    println!("block fitness: all-ones = 4 (optimum), otherwise 3 - #ones (deceptive slope)\n");

    let mut ns_hits = 0;
    let mut ga_hits = 0;
    let mut ns_mean = 0.0;
    let mut ga_mean = 0.0;

    for seed in 0..SEEDS {
        // --- Novelty Search (Algorithm 1) --------------------------------
        let cfg = NoveltyGaConfig {
            population_size: 24,
            offspring: 24,
            max_generations: GENS,
            fitness_threshold: 2.0, // disabled: run the full budget
            seed,
            ..NoveltyGaConfig::default()
        };
        let mut eval =
            |gs: &[Vec<f64>]| -> Vec<f64> { gs.iter().map(|g| deceptive_trap(g, 4)).collect() };
        let out = NoveltyGa::new(DIMS, cfg).run(&mut eval);
        let ns_best = out.best_set.max_fitness();
        ns_mean += ns_best;
        if trap_is_optimal(&out.best_set.entries()[0].genes) {
            ns_hits += 1;
        }

        // --- fitness GA, same budget --------------------------------------
        let mut engine = GaEngine::new(
            DIMS,
            GaConfig {
                population_size: 24,
                offspring: 24,
                seed,
                ..GaConfig::default()
            },
        );
        let mut eval =
            |gs: &[Vec<f64>]| -> Vec<f64> { gs.iter().map(|g| deceptive_trap(g, 4)).collect() };
        engine.evaluate_initial(&mut eval);
        let mut best = f64::NEG_INFINITY;
        let mut best_genes = Vec::new();
        for _ in 0..GENS {
            engine.step(&mut eval);
            if let Some(b) = engine.population().best() {
                if b.fitness > best {
                    best = b.fitness;
                    best_genes = b.genes.clone();
                }
            }
        }
        ga_mean += best;
        if trap_is_optimal(&best_genes) {
            ga_hits += 1;
        }
    }

    ns_mean /= SEEDS as f64;
    ga_mean /= SEEDS as f64;
    println!("algorithm    mean best fitness   global optima found");
    println!("NS-GA        {ns_mean:.4}              {ns_hits}/{SEEDS}");
    println!("fitness-GA   {ga_mean:.4}              {ga_hits}/{SEEDS}");
    println!(
        "\nThe deceptive attractor (all zeros) scores 0.75; riding the gradient\n\
         gets the fitness GA stuck there, while NS's behaviour-space exploration\n\
         reaches full blocks and its bestSet remembers them."
    );
}
