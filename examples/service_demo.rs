//! Prediction as a service, end to end: one `RunSpec` request type, four
//! systems from the unified registry, sessions that advance one step at a
//! time, and a scheduler multiplexing them all over one shared worker
//! pool — with a mid-flight cancellation to show nothing blocks.
//!
//! ```text
//! cargo run --release --example service_demo
//! ```

use ess_service::{systems, RunSpec, Scheduler, SessionEvent};
use parworker::EvalBackend;

fn main() {
    // --- 1. One request type for every system ---------------------------
    println!("registered systems:");
    for spec in systems::all() {
        println!("  {:<9} {}", spec.name, spec.description);
    }

    // --- 2. A single session, driven step by step -----------------------
    let mut session = RunSpec::new("ESS-NS", "meadow_small")
        .seed(7)
        .scale(0.5)
        .session()
        .expect("spec resolves");
    println!(
        "\nsingle session: {} on {} ({} steps)",
        session.system(),
        session.case_name(),
        session.total_steps()
    );
    loop {
        match session.advance() {
            SessionEvent::StepCompleted(step) => println!(
                "  step {}: kign {:.2}, quality {}",
                step.step,
                step.kign,
                step.quality.map_or("-".to_string(), |q| format!("{q:.4}")),
            ),
            SessionEvent::Finished(report) => {
                println!(
                    "  finished: mean quality {:.4}, {} evaluations",
                    report.mean_quality(),
                    report.total_evaluations()
                );
                break;
            }
            SessionEvent::BudgetExhausted { reason, .. } => {
                println!("  stopped early: {reason}");
                break;
            }
        }
    }

    // --- 3. Many sessions on ONE shared worker pool ---------------------
    let workers = 4;
    let mut scheduler = Scheduler::new(EvalBackend::WorkerPool(workers));
    println!(
        "\nscheduler: multiplexing sessions over one shared {}",
        scheduler.pool().name()
    );
    let mut cancel_me = None;
    for (i, system) in systems::all().iter().enumerate() {
        let ids = scheduler
            .submit(
                &RunSpec::new(system.name, "meadow_small")
                    .seed(100 + i as u64)
                    .scale(0.5)
                    .replicates(2),
            )
            .expect("spec resolves");
        println!("  submitted {:<9} as sessions {:?}", system.name, ids);
        if system.name == "ESSIM-DE" {
            cancel_me = ids.first().copied();
        }
    }

    // One fair round, then cancel a session mid-flight.
    let events = scheduler.round();
    println!(
        "  round 1: {} sessions each advanced one step",
        events.len()
    );
    if let Some(id) = cancel_me {
        scheduler.cancel(id);
        println!("  cancelled session {id} between steps");
    }

    let outcomes = scheduler.drain();
    println!("\noutcomes ({} sessions):", outcomes.len());
    for (id, outcome) in outcomes {
        let report = outcome.report();
        println!(
            "  session {id}: {:<9} {} after {} steps, mean quality {:.4}",
            report.system,
            if outcome.is_finished() {
                "finished "
            } else {
                "stopped  "
            },
            report.steps.len(),
            report.mean_quality(),
        );
    }

    // --- 4. Typed errors instead of silent skips ------------------------
    println!("\nerror taxonomy:");
    for bad in [
        RunSpec::new("ESS-5000", "meadow_small"),
        RunSpec::new("ESS-NS", "lost_valley"),
        RunSpec::new("ESS-NS", "meadow_small").replicates(0),
    ] {
        println!("  {}", bad.run().expect_err("deliberately bad spec"));
    }
}
