//! A full prediction campaign under a drifting truth: the scenario the
//! paper's §IV worries about ("a scenario that was a good descriptor at one
//! time step can become worse at the next step").
//!
//! Runs ESS (fitness GA, final population) and ESS-NS (Algorithm 1,
//! bestSet) through every prediction step of the `shifting_wind` burn case
//! and prints quality per step, diversity of the result sets, and the final
//! predicted-vs-real map.
//!
//! ```sh
//! cargo run --release --example predict_campaign
//! ```

use ess::cases;
use ess::fitness::EvalBackend;
use ess::report::{f4, opt_f4, TextTable};
use ess_ns::{EssNs, EssNsConfig};

fn main() {
    let case = cases::shifting_wind();
    println!("case: {} — {}", case.name, case.description);
    println!(
        "observed instants: {:?} min; final burned area {} cells\n",
        case.times,
        case.final_area()
    );

    // Backend selection is a config value on the system: the same
    // pipeline fans scenario evaluations out to a 2-worker farm for both
    // runs (results are backend-independent, only wall time changes).
    let mut essns = EssNs::new(EssNsConfig {
        backend: EvalBackend::WorkerPool(2),
        ..EssNsConfig::default()
    });
    let pipeline = essns.pipeline(2024);

    let mut ess = ess::EssClassic::default();
    let ess_report = pipeline.run(&case, &mut ess);

    let ns_report = pipeline.run(&case, &mut essns);

    let mut table = TextTable::new([
        "step",
        "ESS quality",
        "ESS-NS quality",
        "ESS diversity",
        "ESS-NS diversity",
    ]);
    for (a, b) in ess_report.steps.iter().zip(&ns_report.steps) {
        table.row([
            format!("t{}", a.step + 1),
            opt_f4(a.quality),
            opt_f4(b.quality),
            f4(a.diversity.mean_pairwise),
            f4(b.diversity.mean_pairwise),
        ]);
    }
    table.row([
        "mean".to_string(),
        f4(ess_report.mean_quality()),
        f4(ns_report.mean_quality()),
        f4(ess_report.mean_diversity()),
        f4(ns_report.mean_diversity()),
    ]);
    println!("{}", table.render());
    println!(
        "evaluations: ESS {}, ESS-NS {}; wall: ESS {:.0} ms, ESS-NS {:.0} ms",
        ess_report.total_evaluations(),
        ns_report.total_evaluations(),
        ess_report.total_ms,
        ns_report.total_ms,
    );
    println!(
        "\nThe drifting wind punishes converged populations: ESS-NS's bestSet keeps\n\
         scenarios from different search-space regions, which shows up as the higher\n\
         diversity column and (typically) equal-or-better late-step quality."
    );
}
