//! Quickstart: simulate a fire, score a scenario, and run one ESS-NS
//! Optimization Stage.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ess::fitness::{EvalBackend, ScenarioEvaluator, StepContext};
use ess_ns::{EssNs, EssNsConfig, NoveltyGaConfig};
use firelib::sim::centre_ignition;
use firelib::{FireSim, Scenario, ScenarioSpace, Terrain};
use landscape::io::{render_comparison, render_fire_line};
use std::sync::Arc;

fn main() {
    // --- 1. Simulate a fire -------------------------------------------------
    // 40×40 cells of 100 ft, uniform fuel; the scenario supplies fuel model,
    // wind, moisture and topography (the 9 parameters of Table I).
    let terrain = Terrain::uniform(40, 40, 100.0);
    let sim = Arc::new(FireSim::new(terrain));
    let truth = Scenario {
        model: 1,            // short grass
        wind_speed_mph: 9.0, // fresh breeze…
        wind_dir_deg: 120.0, // …blowing ESE
        ..Scenario::reference()
    };
    let ignition = centre_ignition(40, 40);
    let map = sim.simulate(&truth, &ignition, 0.0, 45.0);
    println!(
        "fire after 45 min ({} cells burned):",
        map.burned_count_at(45.0)
    );
    println!(
        "{}",
        render_fire_line(&map.fire_line_at(45.0), Some(&ignition))
    );

    // Derived fire-behaviour outputs (what a fire analyst reads off the
    // model): head rate of spread, Byram's intensity, flame length.
    let bed = firelib::FuelBed::new(
        firelib::FuelCatalog::standard()
            .model(truth.model)
            .expect("catalog model"),
    );
    let behaviour = firelib::fire_behaviour(&bed, &truth.moisture(), &truth.spread_inputs());
    println!(
        "head ROS {:.1} ft/min | Byram intensity {:.0} Btu/ft/s | flame length {:.1} ft",
        behaviour.ros_head_fpm, behaviour.byram_intensity, behaviour.flame_length_ft
    );
    let shape = landscape::shape_stats(&map.fire_line_at(45.0));
    println!(
        "burn shape: {} cells, {}-cell perimeter, elongation {:.2}\n",
        shape.area_cells, shape.perimeter_cells, shape.elongation
    );

    // --- 2. Score scenarios against an observed fire ------------------------
    // Pretend `truth` is unknown and we only observed the fire line. The
    // fitness of a candidate scenario is the Jaccard index (Eq. 3) between
    // its simulation and the observation.
    let observed = map.fire_line_at(45.0);
    let ctx = Arc::new(StepContext::new(
        Arc::clone(&sim),
        ignition.clone(),
        observed.clone(),
        0.0,
        45.0,
    ));
    let wrong = Scenario {
        wind_dir_deg: 300.0,
        ..truth
    };
    println!(
        "fitness of the true scenario:  {:.4}",
        ctx.fitness_of(&truth)
    );
    println!(
        "fitness of a wrong wind guess: {:.4}",
        ctx.fitness_of(&wrong)
    );

    // --- 3. Search with the novelty-based GA (Algorithm 1) ------------------
    // ESS-NS explores by novelty and remembers the best-fitness scenarios in
    // `bestSet`; evaluation fans out over a 2-worker Master/Worker pool.
    let mut essns = EssNs::new(EssNsConfig {
        algorithm: NoveltyGaConfig {
            population_size: 32,
            offspring: 32,
            max_generations: 15,
            best_set_capacity: 16,
            ..NoveltyGaConfig::default()
        },
        ..EssNsConfig::default()
    });
    let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::WorkerPool(2));
    let outcome = ess::pipeline::StepOptimizer::optimize(&mut essns, &mut evaluator, 42);
    println!(
        "\nESS-NS: {} evaluations, best fitness {:.4}, bestSet holds {} scenarios",
        outcome.evaluations,
        outcome.best_fitness,
        outcome.result_set.len()
    );
    let best = ScenarioSpace.decode(&outcome.result_set[0]);
    println!(
        "best recovered scenario: model {}, wind {:.1} mph @ {:.0}°, M1 {:.1} % (truth: model {}, {:.1} mph @ {:.0}°, {:.1} %)",
        best.model,
        best.wind_speed_mph,
        best.wind_dir_deg,
        best.m1_pct,
        truth.model,
        truth.wind_speed_mph,
        truth.wind_dir_deg,
        truth.m1_pct,
    );

    // --- 4. Compare its simulation with the observation ---------------------
    let predicted = ctx.simulate_line(&best);
    println!("\nobserved vs best-scenario simulation (#: both, -: missed, +: overshoot):");
    println!("{}", render_comparison(&observed, &predicted));
}
