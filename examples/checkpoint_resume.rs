//! Checkpoint/resume and protocol v2, end to end: a serve loop in a
//! background thread, a typed client over in-memory pipes, a session
//! streamed, checkpointed, killed, restored from its serialized snapshot
//! — and the resumed report verified bit-identical (deterministic
//! fields) to an uninterrupted run of the same spec.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```

use essns_repro::ess::fitness::EvalBackend;
use essns_repro::ess_client::{pipe, Client};
use essns_repro::ess_service::proto::Frame;
use essns_repro::ess_service::serve::serve_with;
use essns_repro::ess_service::{PolicyKind, RunSpec};
use std::io::BufReader;

fn main() {
    // One serve loop, weighted-fair-share scheduling, a 2-worker pool.
    let (req_w, req_r) = pipe::duplex();
    let (resp_w, resp_r) = pipe::duplex();
    // lint: allow(thread-spawn) — the example hosts the server on a helper thread to drive it in-process
    let server = std::thread::spawn(move || {
        serve_with(
            BufReader::new(req_r),
            resp_w,
            EvalBackend::WorkerPool(2),
            PolicyKind::WeightedFairShare,
        )
    });
    let mut client = Client::new(BufReader::new(resp_r), req_w);

    let spec = RunSpec::new("ESS-NS", "meadow_small").seed(7).scale(0.3);

    // The uninterrupted reference.
    let reference = client.run(&spec, false).expect("accepted")[0];
    client.drain().expect("drains");
    let reference_done = take_done(&mut client, reference);
    println!(
        "reference     : {} steps, mean quality {:.4}",
        reference_done.steps, reference_done.mean_quality
    );

    // Watch a second run, stop it mid-flight, checkpoint, kill, resume.
    let session = client.run(&spec, true).expect("accepted")[0];
    client.advance(2).expect("two rounds");
    for frame in client.take_events() {
        if let Frame::Progress {
            step, evaluations, ..
        } = frame
        {
            println!("progress      : step {step}, {evaluations} evaluations spent");
        }
    }
    let snapshot = client.snapshot(session).expect("checkpoint");
    println!(
        "checkpoint    : {} steps serialized ({} bytes of JSON)",
        snapshot.completed(),
        snapshot.to_json().to_string().len()
    );
    client.cancel(session).expect("kill");
    let resumed = client.restore(&snapshot, false).expect("resume");
    client.drain().expect("drains");
    let resumed_done = take_done(&mut client, resumed);
    println!(
        "killed+resumed: {} steps, mean quality {:.4}",
        resumed_done.steps, resumed_done.mean_quality
    );

    assert_eq!(resumed_done.steps, reference_done.steps);
    assert_eq!(
        resumed_done.mean_quality.to_bits(),
        reference_done.mean_quality.to_bits(),
        "resume must be bit-identical to never having stopped"
    );
    println!("bit-identical : yes");

    client.quit().expect("quit");
    let summary = server.join().expect("server").expect("serve I/O");
    println!(
        "server summary: {} accepted, {} finished, {} cancelled, {} restored",
        summary.accepted, summary.finished, summary.cancelled, summary.restored
    );
}

fn take_done(
    client: &mut Client<BufReader<pipe::PipeReader>, pipe::PipeWriter>,
    session: u64,
) -> essns_repro::ess_service::proto::DoneFrame {
    client
        .take_events()
        .into_iter()
        .find_map(|f| match f {
            Frame::Done(d) if d.session == session => Some(d),
            _ => None,
        })
        .expect("terminal frame for the session")
}
