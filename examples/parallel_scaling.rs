//! Master/Worker scaling of the Optimization Stage — the paper's
//! parallelisation claim ("parallelism … in the evaluation of the
//! scenarios, i.e., in the simulation process and subsequent computation of
//! the fitness function", §III-B) measured on this machine.
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use ess::fitness::{EvalBackend, ScenarioEvaluator, StepContext};
use ess::pipeline::StepOptimizer;
use ess_ns::EssNs;
use firelib::sim::centre_ignition;
use firelib::{FireSim, Scenario, Terrain};
use parworker::stats::render_speedup_table;
use parworker::{SpeedupRow, Stopwatch};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Deployment-scale raster: each scenario evaluation costs milliseconds
    // (on toy grids the farm's messaging overhead would dominate).
    let n = 128usize;
    let sim = Arc::new(FireSim::new(Terrain::uniform(n, n, 100.0)));
    let ignition = centre_ignition(n, n);
    let truth = Scenario {
        wind_speed_mph: 10.0,
        wind_dir_deg: 45.0,
        ..Scenario::reference()
    };
    let target = sim.simulate_fire_line(&truth, &ignition, 0.0, 60.0);
    let ctx = Arc::new(StepContext::new(sim, ignition, target, 0.0, 60.0));
    println!("one ESS-NS Optimization Stage on a {n}x{n} raster (~420 simulations)\n");

    let time_backend = |backend: EvalBackend| -> Duration {
        let mut optimizer = EssNs::baseline();
        let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), backend);
        let sw = Stopwatch::start();
        let out = optimizer.optimize(&mut evaluator, 7);
        let elapsed = sw.elapsed();
        assert!(out.evaluations > 0);
        elapsed
    };

    // Warm-up, then measure.
    let _ = time_backend(EvalBackend::Serial);
    let baseline = time_backend(EvalBackend::Serial);
    let mut rows = vec![SpeedupRow::new(1, baseline, baseline)];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let mut counts = vec![2, cores.max(2), 2 * cores];
    counts.sort_unstable();
    counts.dedup();
    for workers in counts {
        rows.push(SpeedupRow::new(
            workers,
            time_backend(EvalBackend::WorkerPool(workers)),
            baseline,
        ));
    }
    println!("master/worker farm (channel scatter/gather):");
    println!("{}", render_speedup_table(&rows));

    let rayon2 = time_backend(EvalBackend::Rayon(2));
    println!(
        "rayon(2) work stealing: {:.1} ms (speedup {:.2})",
        rayon2.as_secs_f64() * 1e3,
        baseline.as_secs_f64() / rayon2.as_secs_f64(),
    );
    println!(
        "\nWith {cores} cores available, speedup saturates at ~{cores}x; oversubscribed\n\
         worker counts only add scheduling overhead — the same plateau the\n\
         predecessor papers report for their MPI deployments.",
    );
}
