//! `essns-repro` — umbrella crate of the reproduction of
//! *"A Parallel Novelty Search Metaheuristic Applied to a Wildfire
//! Prediction System"* (Strappa, Caymes-Scutari & Bianchini, IPPS 2022).
//!
//! Re-exports every workspace crate so the examples and integration tests
//! have a single import root. Start with [`ess_ns`] (the paper's
//! contribution: Algorithm 1 and the ESS-NS system), then [`ess`] (the
//! prediction framework and baselines), [`ess_service`] (the serving
//! layer: sessions, snapshots, scheduling policies, the protocol-v2
//! serve loop), [`ess_client`] (the typed protocol-v2 client),
//! [`firelib`] (the fire simulator), [`evoalg`] (the EA substrate),
//! [`parworker`] (the Master/Worker engine) and [`landscape`] (rasters
//! and metrics).
//!
//! ```no_run
//! use essns_repro::ess::{cases, fitness::EvalBackend};
//! use essns_repro::ess_ns::{EssNs, EssNsConfig};
//!
//! let case = cases::grass_uniform();
//! // Backend choice is a runtime config value; every backend yields
//! // bit-identical results, so this only changes wall time.
//! let mut system = EssNs::new(EssNsConfig {
//!     backend: EvalBackend::WorkerPool(2),
//!     ..EssNsConfig::default()
//! });
//! let report = system.pipeline(7).run(&case, &mut system.clone());
//! println!("mean prediction quality: {:.3}", report.mean_quality());
//! ```

pub use ess;
pub use ess_client;
pub use ess_ns;
pub use ess_service;
pub use evoalg;
pub use firelib;
pub use landscape;
pub use parworker;
