//! End-to-end integration of the workload corpus: every named workload —
//! fuel mosaics, relief, gusty wind, multi-ignition, the large grid —
//! resolves through `ess::cases`, expands into a valid burn case and runs
//! the full calibration → prediction pipeline, exactly like the hand-built
//! library cases. Grids are shrunk to smoke size so the whole corpus stays
//! fast; full-size behaviour is exercised by the bench harness
//! (`harness -- workloads`).

use essns_repro::ess::cases;
use essns_repro::ess::fitness::EvalBackend;
use essns_repro::ess::pipeline::PredictionPipeline;
use essns_repro::ess_ns::{EssNs, EssNsConfig, NoveltyGaConfig};
use essns_repro::firelib::workload;

fn small_essns() -> EssNs {
    EssNs::new(EssNsConfig {
        algorithm: NoveltyGaConfig {
            population_size: 8,
            offspring: 8,
            max_generations: 2,
            best_set_capacity: 6,
            ..NoveltyGaConfig::default()
        },
        ..EssNsConfig::default()
    })
}

/// Every corpus workload runs calibration + prediction end to end and
/// produces sane step reports.
#[test]
fn every_corpus_workload_runs_the_full_pipeline() {
    let specs = workload::corpus();
    assert!(specs.len() >= 6, "corpus shrank below the acceptance bar");
    for spec in &specs {
        let case = cases::workload_case(&spec.shrunk(40));
        assert_eq!(case.name, spec.name);
        assert!(case.intervals() >= 2, "{}: too few intervals", spec.name);
        let mut system = small_essns();
        let report = PredictionPipeline::new(EvalBackend::Serial, 11).run(&case, &mut system);
        assert_eq!(report.case, spec.name);
        assert_eq!(report.steps.len(), case.intervals() - 1, "{}", spec.name);
        for (i, step) in report.steps.iter().enumerate() {
            assert!(step.evaluations > 0, "{} step {i}: no work", spec.name);
            assert!(
                (0.0..=1.0).contains(&step.calibration_fitness),
                "{} step {i}: calibration fitness {}",
                spec.name,
                step.calibration_fitness
            );
            if let Some(q) = step.quality {
                assert!(
                    (0.0..=1.0).contains(&q),
                    "{} step {i}: quality {q}",
                    spec.name
                );
            }
        }
    }
}

/// Corpus names resolve through the same `ess::cases::by_name` entry point
/// as the hand-built library — the single resolution point the harness and
/// configs use.
#[test]
fn corpus_names_resolve_alongside_the_library() {
    let names = cases::case_names();
    for spec in workload::corpus() {
        assert!(names.contains(&spec.name), "{} not listed", spec.name);
    }
    assert!(names.contains(&"grass_uniform"));
    // Workload resolution is exercised on the smallest corpus member (the
    // rest expand identically; full-size expansion is covered above).
    let case = cases::by_name("meadow_small").expect("corpus name resolves");
    assert_eq!(case.name, "meadow_small");
}

/// Workload expansion is deterministic end to end: two independent builds
/// of the same named workload produce identical reference fires, so the
/// corpus is a stable cross-PR benchmark substrate.
#[test]
fn workload_cases_are_reproducible() {
    let spec = workload::twin_fronts().shrunk(40);
    let a = cases::workload_case(&spec);
    let b = cases::workload_case(&spec);
    assert_eq!(a.times, b.times);
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.fire_lines, b.fire_lines);
}
