//! A1 — Algorithm 1 conformance: line-by-line behavioural checks of the
//! Novelty-based Genetic Algorithm with Multiple Solutions against the
//! paper's pseudocode, using an instrumented evaluator as the oracle.

use essns_repro::ess_ns::{NoveltyGa, NoveltyGaConfig, StopReason};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared evaluation log: every `(genome, fitness)` pair ever scored.
type EvalLog = Rc<RefCell<Vec<(Vec<f64>, f64)>>>;

/// An instrumented objective that records every genome it ever scored.
fn recording_eval(log: EvalLog) -> impl FnMut(&[Vec<f64>]) -> Vec<f64> {
    move |gs: &[Vec<f64>]| {
        gs.iter()
            .map(|g| {
                let f = evoalg::benchmarks::sphere(g);
                log.borrow_mut().push((g.clone(), f));
                f
            })
            .collect()
    }
}

fn base_config() -> NoveltyGaConfig {
    NoveltyGaConfig {
        population_size: 12,
        offspring: 16,
        max_generations: 8,
        fitness_threshold: 2.0, // force the generation budget
        best_set_capacity: 6,
        archive_capacity: 20,
        seed: 77,
        ..NoveltyGaConfig::default()
    }
}

/// Line 21 + output contract: `bestSet` holds exactly the top-fitness
/// distinct genomes among everything the search ever evaluated.
#[test]
fn best_set_is_global_topk_of_all_evaluations() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut eval = recording_eval(Rc::clone(&log));
    let out = NoveltyGa::new(5, base_config()).run(&mut eval);

    // Oracle: sort every evaluated (genome, fitness) by fitness, dedupe by
    // genome, take the top capacity.
    let mut seen: Vec<(Vec<f64>, f64)> = Vec::new();
    for (g, f) in log.borrow().iter() {
        if !seen.iter().any(|(sg, _)| sg == g) {
            seen.push((g.clone(), *f));
        }
    }
    seen.sort_by(|a, b| b.1.total_cmp(&a.1));
    seen.truncate(6);
    let expected: Vec<f64> = seen.iter().map(|(_, f)| *f).collect();
    let got = out.best_set.fitness_values();
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        assert!(
            (g - e).abs() < 1e-12,
            "bestSet {got:?} != oracle top-k {expected:?}"
        );
    }
}

/// Line 6: stopping on the generation budget.
#[test]
fn stops_on_generation_budget() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut eval = recording_eval(Rc::clone(&log));
    let out = NoveltyGa::new(4, base_config()).run(&mut eval);
    assert_eq!(out.generations, 8);
    assert_eq!(out.stop_reason, StopReason::GenerationBudget);
}

/// Line 6: stopping on the fitness threshold, checked against line 18's
/// `getMaxFitness(bestSet)`.
#[test]
fn stops_on_fitness_threshold() {
    let cfg = NoveltyGaConfig {
        fitness_threshold: 0.5,
        max_generations: 1000,
        ..base_config()
    };
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut eval = recording_eval(Rc::clone(&log));
    let out = NoveltyGa::new(4, cfg).run(&mut eval);
    assert_eq!(out.stop_reason, StopReason::FitnessThreshold);
    assert!(out.best_set.max_fitness() >= 0.5);
    assert!(out.generations < 1000);
    // The loop must stop at the FIRST generation whose bestSet reached the
    // threshold: all history rows but the last are below it.
    for h in &out.history[..out.history.len() - 1] {
        assert!(
            h.max_fitness < 0.5,
            "ran past the threshold at gen {}",
            h.generation
        );
    }
}

/// Lines 8–10: evaluation effort is exactly N + generations × m (the
/// population's cached scores are reused, offspring are fresh).
#[test]
fn evaluation_budget_matches_pseudocode() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut eval = recording_eval(Rc::clone(&log));
    let out = NoveltyGa::new(4, base_config()).run(&mut eval);
    let total = log.borrow().len() as u64;
    assert_eq!(total, 12 + 8 * 16);
    assert_eq!(out.evaluations, total);
}

/// Line 15/16 invariants across the whole run: archive bounded by its
/// capacity, population size constant at N.
#[test]
fn archive_bounded_and_population_constant() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut eval = recording_eval(Rc::clone(&log));
    let out = NoveltyGa::new(4, base_config()).run(&mut eval);
    assert!(out.archive.len() <= 20);
    assert_eq!(out.final_population.len(), 12);
    for h in &out.history {
        assert!(h.archive_len <= 20);
        assert!(h.best_set_len <= 6);
    }
}

/// Lines 18–19: `maxFitness` is non-decreasing and equals the bestSet head.
#[test]
fn max_fitness_monotone_and_consistent() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut eval = recording_eval(Rc::clone(&log));
    let out = NoveltyGa::new(4, base_config()).run(&mut eval);
    let series: Vec<f64> = out.history.iter().map(|h| h.max_fitness).collect();
    assert!(series.windows(2).all(|w| w[1] >= w[0]), "{series:?}");
    assert_eq!(*series.last().unwrap(), out.best_set.max_fitness());
}

/// The defining NS property the paper relies on (§III-A): the population
/// itself does not converge — its genotypic diversity stays of the same
/// order as the initial random population's.
#[test]
fn population_never_converges() {
    let cfg = NoveltyGaConfig {
        max_generations: 30,
        ..base_config()
    };
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut eval = recording_eval(Rc::clone(&log));
    let out = NoveltyGa::new(6, cfg).run(&mut eval);
    let final_div = evoalg::diversity::mean_pairwise_distance(&out.final_population.genomes());
    // A uniform random population in [0,1]^6 has mean pairwise normalised
    // distance ≈ 0.38; a converged GA population sits well below 0.05.
    assert!(
        final_div > 0.1,
        "NS population collapsed to diversity {final_div} after 30 generations"
    );
}
