//! The paper's hypothesis, as an executable check: "the application of a
//! novelty-based metaheuristic to the fire propagation prediction problem
//! can obtain comparable or better results in quality with respect to
//! existing methods" (§I), plus the mechanism behind it (§II-B): the
//! baselines' result sets converge genotypically, ESS-NS's do not.
//!
//! Quality comparisons on stochastic search are noisy, so the quality
//! assertion is "comparable": over several seeds on the drifting-truth
//! case, ESS-NS's mean quality must be at least 85 % of the best
//! baseline's. The diversity assertions are the mechanism and are robust.

use essns_repro::ess::cases;
use essns_repro::ess::fitness::EvalBackend;
use essns_repro::ess::pipeline::{PredictionPipeline, StepOptimizer};
use essns_repro::ess::{EssClassic, EssimDe, EssimEa};
use essns_repro::ess_ns::EssNs;

fn mean_quality_over_seeds(
    make: &dyn Fn() -> Box<dyn StepOptimizer>,
    case: &essns_repro::ess::BurnCase,
    seeds: &[u64],
) -> (f64, f64) {
    let mut q = 0.0;
    let mut d = 0.0;
    for &seed in seeds {
        let mut sys = make();
        let r = PredictionPipeline::new(EvalBackend::Serial, seed).run(case, sys.as_mut());
        q += r.mean_quality();
        d += r.mean_diversity();
    }
    (q / seeds.len() as f64, d / seeds.len() as f64)
}

#[test]
fn essns_is_comparable_or_better_under_drift() {
    // The tiny drifting case keeps this integration test fast in debug
    // builds; the full-size version of this comparison is the harness's
    // e1-quality table on `shifting_wind`.
    let case = cases::tiny_drift_case();
    let seeds = [100, 200, 300];

    let (ns_q, ns_d) = mean_quality_over_seeds(&|| Box::new(EssNs::baseline()), &case, &seeds);
    let baselines: Vec<(&str, f64, f64)> = vec![
        {
            let (q, d) =
                mean_quality_over_seeds(&|| Box::new(EssClassic::default()), &case, &seeds);
            ("ESS", q, d)
        },
        {
            let (q, d) = mean_quality_over_seeds(&|| Box::new(EssimEa::default()), &case, &seeds);
            ("ESSIM-EA", q, d)
        },
        {
            let (q, d) = mean_quality_over_seeds(&|| Box::new(EssimDe::default()), &case, &seeds);
            ("ESSIM-DE", q, d)
        },
    ];

    let best_baseline = baselines
        .iter()
        .map(|&(_, q, _)| q)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        ns_q >= 0.85 * best_baseline,
        "ESS-NS quality {ns_q:.4} not comparable to best baseline {best_baseline:.4} \
         (details: {baselines:?})"
    );

    // The mechanism (§II-B): the *population-converging* baselines — ESS
    // and ESSIM-EA, whose result set is a final evolved population — lose
    // genotypic diversity; ESS-NS's bestSet does not. ESSIM-DE is exempt:
    // its published diversity modification injects members "regardless of
    // their fitness", which is exactly a diversity patch (and the paper
    // credits it with better quality than the original ESSIM-DE).
    for (name, _, d) in &baselines {
        if *name == "ESSIM-DE" {
            continue;
        }
        assert!(
            ns_d > *d,
            "ESS-NS diversity {ns_d:.4} should exceed {name}'s {d:.4}"
        );
    }
}

#[test]
fn stale_optimum_argument_holds() {
    // §IV: under drift, the scenario that was perfect for interval 0
    // degrades later — the reason remembering diverse solutions helps.
    use essns_repro::ess::fitness::StepContext;
    use std::sync::Arc;
    let case = cases::tiny_drift_case();
    let last = case.intervals() - 1;
    let ctx = StepContext::new(
        Arc::clone(&case.sim),
        case.fire_lines[last].clone(),
        case.fire_lines[last + 1].clone(),
        case.times[last],
        case.times[last + 1],
    );
    let fresh = ctx.fitness_of(&case.truth[last]);
    let stale = ctx.fitness_of(&case.truth[0]);
    assert!(fresh > stale, "drift did not degrade the stale optimum");
}
