//! Integration tests for the extension features: observation noise (E10),
//! derived fire-behaviour outputs, and fire-front geometry.

use essns_repro::ess::cases::{self, with_observation_noise};
use essns_repro::ess::fitness::EvalBackend;
use essns_repro::ess::pipeline::PredictionPipeline;
use essns_repro::ess_ns::EssNs;
use essns_repro::firelib::sim::centre_ignition;
use essns_repro::firelib::{self, FireSim, Scenario, Terrain};
use essns_repro::landscape;

#[test]
fn pipeline_survives_noisy_observations() {
    let clean = cases::tiny_drift_case();
    for flip in [0.1, 0.3] {
        let noisy = with_observation_noise(&clean, flip, 7);
        let mut sys = EssNs::baseline();
        let report = PredictionPipeline::new(EvalBackend::Serial, 11).run(&noisy, &mut sys);
        for s in &report.steps {
            if let Some(q) = s.quality {
                assert!(
                    (0.0..=1.0).contains(&q),
                    "flip {flip}: quality {q} out of range"
                );
            }
            assert!((0.0..=1.0).contains(&s.kign));
        }
        assert!(
            report.mean_quality() > 0.0,
            "flip {flip}: prediction collapsed to zero"
        );
    }
}

#[test]
fn noise_degrades_the_oracle_quality() {
    // The hidden truth scores 1.0 on clean observations; with noisy
    // observations even the truth cannot score 1 — the gap measures the
    // injected observation error that E10 studies.
    use essns_repro::ess::fitness::StepContext;
    use std::sync::Arc;
    let clean = cases::tiny_test_case();
    let noisy = with_observation_noise(&clean, 0.3, 3);
    let ctx = |case: &essns_repro::ess::BurnCase| {
        StepContext::new(
            Arc::clone(&case.sim),
            case.fire_lines[0].clone(),
            case.fire_lines[1].clone(),
            case.times[0],
            case.times[1],
        )
    };
    let clean_f = ctx(&clean).fitness_of(&clean.truth[0]);
    let noisy_f = ctx(&noisy).fitness_of(&noisy.truth[0]);
    assert!((clean_f - 1.0).abs() < 1e-9);
    assert!(noisy_f < clean_f, "noise must cost the oracle some fitness");
    assert!(
        noisy_f > 0.5,
        "30% front noise should not destroy the signal entirely"
    );
}

#[test]
fn behaviour_outputs_track_scenario_severity() {
    let mild = Scenario {
        model: 1,
        wind_speed_mph: 2.0,
        ..Scenario::reference()
    };
    let severe = Scenario {
        model: 4,
        wind_speed_mph: 20.0,
        m1_pct: 3.0,
        m10_pct: 4.0,
        m100_pct: 5.0,
        ..Scenario::reference()
    };
    let bed_of = |s: &Scenario| {
        firelib::FuelBed::new(firelib::FuelCatalog::standard().model(s.model).unwrap())
    };
    let mild_b = firelib::fire_behaviour(&bed_of(&mild), &mild.moisture(), &mild.spread_inputs());
    let severe_b = firelib::fire_behaviour(
        &bed_of(&severe),
        &severe.moisture(),
        &severe.spread_inputs(),
    );
    assert!(severe_b.flame_length_ft > 2.0 * mild_b.flame_length_ft);
    assert!(severe_b.byram_intensity > mild_b.byram_intensity);
    assert!(severe_b.ros_head_fpm > mild_b.ros_head_fpm);
}

#[test]
fn windy_burns_are_elongated_calm_burns_round() {
    let sim = FireSim::new(Terrain::uniform(41, 41, 100.0));
    let ignition = centre_ignition(41, 41);
    let calm = Scenario {
        wind_speed_mph: 0.0,
        slope_deg: 0.0,
        ..Scenario::reference()
    };
    let windy = Scenario {
        wind_speed_mph: 15.0,
        wind_dir_deg: 90.0,
        ..calm
    };
    let calm_line = sim.simulate_fire_line(&calm, &ignition, 0.0, 120.0);
    let windy_line = sim.simulate_fire_line(&windy, &ignition, 0.0, 40.0);
    let calm_shape = landscape::shape_stats(&calm_line);
    let windy_shape = landscape::shape_stats(&windy_line);
    assert!(
        calm_shape.elongation < 1.2,
        "calm fire should be near-round, elongation {}",
        calm_shape.elongation
    );
    assert!(
        windy_shape.elongation > calm_shape.elongation,
        "wind must elongate the burn ({} vs {})",
        windy_shape.elongation,
        calm_shape.elongation
    );
    // The windy fire's centroid shifts downwind (east = higher column).
    assert!(windy_shape.centroid.1 > calm_shape.centroid.1);
}

#[test]
fn perimeter_grows_slower_than_area() {
    // For a growing roughly-convex burn, area is quadratic in time while
    // the perimeter is linear: the ratio must rise.
    let sim = FireSim::new(Terrain::uniform(61, 61, 100.0));
    let ignition = centre_ignition(61, 61);
    let s = Scenario {
        wind_speed_mph: 4.0,
        ..Scenario::reference()
    };
    let map = sim.simulate(&s, &ignition, 0.0, 260.0);
    let early = landscape::shape_stats(&map.fire_line_at(130.0));
    let late = landscape::shape_stats(&map.fire_line_at(260.0));
    assert!(late.area_cells > early.area_cells);
    let early_ratio = early.area_cells as f64 / early.perimeter_cells.max(1) as f64;
    let late_ratio = late.area_cells as f64 / late.perimeter_cells.max(1) as f64;
    assert!(
        late_ratio > early_ratio,
        "area/perimeter must rise as the burn grows ({early_ratio} → {late_ratio})"
    );
}
