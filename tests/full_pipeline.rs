//! End-to-end integration: every system through the full prediction
//! pipeline (Figs. 1–3 dataflow) on a small burn case.

use essns_repro::ess::cases;
use essns_repro::ess::fitness::EvalBackend;
use essns_repro::ess::pipeline::{PredictionPipeline, StepOptimizer};
use essns_repro::ess::{EssClassic, EssimDe, EssimEa};
use essns_repro::ess_ns::EssNs;

fn all_systems() -> Vec<Box<dyn StepOptimizer>> {
    vec![
        Box::new(EssClassic::default()),
        Box::new(EssimEa::default()),
        Box::new(EssimDe::default()),
        Box::new(EssNs::baseline()),
    ]
}

#[test]
fn every_system_completes_a_prediction_run() {
    let case = cases::tiny_test_case();
    for mut system in all_systems() {
        let report = PredictionPipeline::new(EvalBackend::Serial, 5).run(&case, system.as_mut());
        assert_eq!(report.case, "tiny_test_case");
        assert_eq!(
            report.steps.len(),
            case.intervals() - 1,
            "{}",
            report.system
        );
        // First step calibrates only; later steps must predict.
        assert!(report.steps[0].quality.is_none());
        for s in &report.steps[1..] {
            let q = s.quality.expect("prediction after first step");
            assert!((0.0..=1.0).contains(&q), "{}: quality {q}", report.system);
        }
        for s in &report.steps {
            assert!(
                (0.0..=1.0).contains(&s.kign),
                "{}: Kign {}",
                report.system,
                s.kign
            );
            assert!(
                (0.0..=1.0).contains(&s.calibration_fitness),
                "{}: calibration fitness",
                report.system
            );
            assert!(s.evaluations > 0, "{}: no evaluations", report.system);
            assert!(s.diversity.size > 0, "{}: empty result set", report.system);
        }
    }
}

#[test]
fn pipeline_deterministic_per_seed_for_every_system() {
    let case = cases::tiny_test_case();
    for make in [0usize, 1, 2, 3] {
        let run = |seed: u64| {
            let mut sys = all_systems().remove(make);
            let r = PredictionPipeline::new(EvalBackend::Serial, seed).run(&case, sys.as_mut());
            r.steps
                .iter()
                .map(|s| (s.quality.map(f64::to_bits), s.kign.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "system #{make} not deterministic");
    }
}

#[test]
fn backends_produce_identical_predictions() {
    // The parallel backends must not change results, only wall time
    // (evaluation is pure; the master's RNG stream is untouched).
    let case = cases::tiny_test_case();
    let quality_with = |backend| {
        let mut sys = EssNs::baseline();
        let r = PredictionPipeline::new(backend, 31).run(&case, &mut sys);
        r.steps
            .iter()
            .map(|s| (s.quality.map(f64::to_bits), s.kign.to_bits()))
            .collect::<Vec<_>>()
    };
    let serial = quality_with(EvalBackend::Serial);
    assert_eq!(
        serial,
        quality_with(EvalBackend::WorkerPool(2)),
        "master-worker diverged"
    );
    assert_eq!(
        serial,
        quality_with(EvalBackend::Rayon(2)),
        "rayon diverged"
    );
}

#[test]
fn essns_result_sets_stay_diverse_across_steps() {
    // Averaged over seeds: single-seed diversity comparisons on the tiny
    // case are noisy, but the mechanism must show in the mean.
    let case = cases::tiny_test_case();
    let seeds = [17u64, 18, 19, 20];
    let mean_div = |mk: &dyn Fn() -> Box<dyn essns_repro::ess::pipeline::StepOptimizer>| {
        seeds
            .iter()
            .map(|&seed| {
                let mut sys = mk();
                PredictionPipeline::new(EvalBackend::Serial, seed)
                    .run(&case, sys.as_mut())
                    .mean_diversity()
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let ns_div = mean_div(&|| Box::new(EssNs::baseline()));
    let ess_div = mean_div(&|| Box::new(EssClassic::default()));
    assert!(
        ns_div > ess_div,
        "ESS-NS sets ({ns_div}) should out-diversify ESS's final populations ({ess_div})"
    );
}

#[test]
fn oracle_quality_dominates_all_systems_on_static_case() {
    use essns_repro::ess::fitness::ScenarioEvaluator;
    use essns_repro::ess::pipeline::OptimizeOutcome;
    use essns_repro::firelib::ScenarioSpace;

    struct Oracle(Vec<f64>);
    impl StepOptimizer for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn optimize(&mut self, _e: &mut ScenarioEvaluator, _s: u64) -> OptimizeOutcome {
            OptimizeOutcome {
                result_set: vec![self.0.clone()],
                best_fitness: 1.0,
                generations: 0,
                evaluations: 1,
            }
        }
    }

    let case = cases::tiny_test_case();
    let p = PredictionPipeline::new(EvalBackend::Serial, 3);
    let mut oracle = Oracle(ScenarioSpace.encode(&case.truth[0]).to_vec());
    let oracle_q = p.run(&case, &mut oracle).mean_quality();
    for mut system in all_systems() {
        let q = p.run(&case, system.as_mut()).mean_quality();
        assert!(
            oracle_q >= q - 1e-9,
            "{} ({q}) beat the oracle ({oracle_q})?",
            system.name()
        );
    }
}
