//! T1 — Table I conformance: the in-code scenario space matches the
//! paper's parameter table row for row, and the whole workspace agrees on
//! the encoding.

use essns_repro::firelib::{ParamDef, Scenario, ScenarioSpace, GENE_COUNT};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The rows of Table I exactly as printed in the paper.
const PAPER_TABLE1: [(&str, f64, f64, &str); 9] = [
    ("Model", 1.0, 13.0, "fuel model"),
    ("WindSpd", 0.0, 80.0, "miles/hour"),
    ("WindDir", 0.0, 360.0, "degrees clockwise from North"),
    ("M1", 1.0, 60.0, "percent"),
    ("M10", 1.0, 60.0, "percent"),
    ("M100", 1.0, 60.0, "percent"),
    ("Mherb", 30.0, 300.0, "percent"),
    ("Slope", 0.0, 81.0, "degrees"),
    ("Aspect", 0.0, 360.0, "degrees clockwise from north"),
];

#[test]
fn parameter_table_matches_paper() {
    let params: &[ParamDef; GENE_COUNT] = ScenarioSpace.params();
    assert_eq!(params.len(), PAPER_TABLE1.len());
    for (def, (name, lo, hi, unit)) in params.iter().zip(PAPER_TABLE1) {
        assert_eq!(def.name, name);
        assert_eq!(def.lo, lo, "{name} lower bound");
        assert_eq!(def.hi, hi, "{name} upper bound");
        assert_eq!(def.unit, unit, "{name} unit");
    }
}

#[test]
fn only_the_fuel_model_is_integer_valued() {
    for def in ScenarioSpace.params() {
        assert_eq!(def.integer, def.name == "Model", "{}", def.name);
    }
}

#[test]
fn every_sample_respects_every_row() {
    let mut rng = StdRng::seed_from_u64(2022);
    for _ in 0..2000 {
        let s: Scenario = ScenarioSpace.sample(&mut rng);
        let values = s.values();
        for (v, (name, lo, hi, _)) in values.iter().zip(PAPER_TABLE1) {
            assert!(
                (lo..=hi).contains(v),
                "sampled {name} = {v} outside the paper range [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn rendered_table_contains_every_paper_row() {
    let rendered = essns_repro::firelib::scenario::render_table1();
    for (name, _, _, unit) in PAPER_TABLE1 {
        assert!(rendered.contains(name), "missing parameter {name}");
        assert!(rendered.contains(unit), "missing unit {unit}");
    }
}
